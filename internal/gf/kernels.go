package gf

import "encoding/binary"

// This file holds the word-parallel fused kernels: the software analogue
// of ISA-L's gf_2vect/gf_4vect dot products (§4.1 of the DIALGA paper).
// Instead of one VPSHUFB split-table lookup per coefficient, the packed
// tables fuse 2 or 4 coefficients into a single 16- or 32-bit entry, so
// one L1 load yields the products for 2-4 parity rows at once and each
// source word is loaded exactly once per row group.
//
// The fused accumulation runs in an *interleaved* layout — acc[2p+r]
// (pairs) or acc[4p+r] (quads) holds row r at byte position p — because
// interleaving is what lets eight packed entries be XORed into plain
// 64-bit accumulator words with no per-row shifting. The caller
// de-interleaves once per tile (Deinterleave2/Deinterleave4) after all k
// sources have been accumulated, so the transpose cost is amortized over
// the whole source sweep. See DESIGN.md "Word-parallel GF kernels".

// PairTables is the packed split table for two coefficients:
// entry b = c0*b | c1*b<<8. One lookup multiplies a source byte by both
// coefficients of a 2-row group.
type PairTables [256]uint16

// QuadTables is the packed split table for four coefficients:
// entry b = c0*b | c1*b<<8 | c2*b<<16 | c3*b<<24. One lookup multiplies
// a source byte by all four coefficients of a 4-row group.
type QuadTables [256]uint32

// MakePairTables builds the packed table for coefficients (c0, c1).
func MakePairTables(c0, c1 byte) PairTables {
	var t PairTables
	r0, r1 := &mulTable[c0], &mulTable[c1]
	for b := 0; b < 256; b++ {
		t[b] = uint16(r0[b]) | uint16(r1[b])<<8
	}
	return t
}

// MakeQuadTables builds the packed table for coefficients (c0, c1, c2, c3).
func MakeQuadTables(c0, c1, c2, c3 byte) QuadTables {
	var t QuadTables
	r0, r1 := &mulTable[c0], &mulTable[c1]
	r2, r3 := &mulTable[c2], &mulTable[c3]
	for b := 0; b < 256; b++ {
		t[b] = uint32(r0[b]) | uint32(r1[b])<<8 | uint32(r2[b])<<16 | uint32(r3[b])<<24
	}
	return t
}

// MulAddQuad accumulates the four products of every source byte into the
// 4-way interleaved accumulator: acc[4*p+r] ^= c_r * src[p] for r in
// 0..3. len(acc) must be at least 4*len(src); acc and src must not
// overlap. Eight source bytes are processed per step.
func (t *QuadTables) MulAddQuad(acc, src []byte) {
	if len(acc) < 4*len(src) {
		panic("gf: MulAddQuad accumulator too short")
	}
	for len(src) >= 8 && len(acc) >= 32 {
		w := binary.LittleEndian.Uint64(src)
		a0 := binary.LittleEndian.Uint64(acc) ^
			(uint64(t[byte(w)]) | uint64(t[byte(w>>8)])<<32)
		a1 := binary.LittleEndian.Uint64(acc[8:]) ^
			(uint64(t[byte(w>>16)]) | uint64(t[byte(w>>24)])<<32)
		a2 := binary.LittleEndian.Uint64(acc[16:]) ^
			(uint64(t[byte(w>>32)]) | uint64(t[byte(w>>40)])<<32)
		a3 := binary.LittleEndian.Uint64(acc[24:]) ^
			(uint64(t[byte(w>>48)]) | uint64(t[byte(w>>56)])<<32)
		binary.LittleEndian.PutUint64(acc, a0)
		binary.LittleEndian.PutUint64(acc[8:], a1)
		binary.LittleEndian.PutUint64(acc[16:], a2)
		binary.LittleEndian.PutUint64(acc[24:], a3)
		src = src[8:]
		acc = acc[32:]
	}
	for i, b := range src {
		q := t[b]
		acc[4*i] ^= byte(q)
		acc[4*i+1] ^= byte(q >> 8)
		acc[4*i+2] ^= byte(q >> 16)
		acc[4*i+3] ^= byte(q >> 24)
	}
}

// MulAddPair accumulates the two products of every source byte into the
// 2-way interleaved accumulator: acc[2*p+r] ^= c_r * src[p] for r in
// 0..1. len(acc) must be at least 2*len(src); acc and src must not
// overlap. Eight source bytes are processed per step.
func (t *PairTables) MulAddPair(acc, src []byte) {
	if len(acc) < 2*len(src) {
		panic("gf: MulAddPair accumulator too short")
	}
	for len(src) >= 8 && len(acc) >= 16 {
		w := binary.LittleEndian.Uint64(src)
		a0 := binary.LittleEndian.Uint64(acc) ^
			(uint64(t[byte(w)]) | uint64(t[byte(w>>8)])<<16 |
				uint64(t[byte(w>>16)])<<32 | uint64(t[byte(w>>24)])<<48)
		a1 := binary.LittleEndian.Uint64(acc[8:]) ^
			(uint64(t[byte(w>>32)]) | uint64(t[byte(w>>40)])<<16 |
				uint64(t[byte(w>>48)])<<32 | uint64(t[byte(w>>56)])<<48)
		binary.LittleEndian.PutUint64(acc, a0)
		binary.LittleEndian.PutUint64(acc[8:], a1)
		src = src[8:]
		acc = acc[16:]
	}
	for i, b := range src {
		q := t[b]
		acc[2*i] ^= byte(q)
		acc[2*i+1] ^= byte(q >> 8)
	}
}

// Deinterleave4 transposes a 4-way interleaved accumulator into four
// plain rows: d_r[p] = acc[4*p+r]. All four destinations must share one
// length n with len(acc) >= 4*n. The destinations are overwritten.
func Deinterleave4(acc, d0, d1, d2, d3 []byte) {
	n := len(d0)
	if len(d1) != n || len(d2) != n || len(d3) != n {
		panic("gf: Deinterleave4 destination length mismatch")
	}
	if len(acc) < 4*n {
		panic("gf: Deinterleave4 accumulator too short")
	}
	for n >= 8 && len(acc) >= 32 {
		w0 := binary.LittleEndian.Uint64(acc)
		w1 := binary.LittleEndian.Uint64(acc[8:])
		w2 := binary.LittleEndian.Uint64(acc[16:])
		w3 := binary.LittleEndian.Uint64(acc[24:])
		// Row r of position pair j sits at lanes r and 4+r of wj.
		binary.LittleEndian.PutUint64(d0,
			(w0&0xff|w0>>32&0xff<<8)|(w1&0xff|w1>>32&0xff<<8)<<16|
				(w2&0xff|w2>>32&0xff<<8)<<32|(w3&0xff|w3>>32&0xff<<8)<<48)
		binary.LittleEndian.PutUint64(d1,
			(w0>>8&0xff|w0>>40&0xff<<8)|(w1>>8&0xff|w1>>40&0xff<<8)<<16|
				(w2>>8&0xff|w2>>40&0xff<<8)<<32|(w3>>8&0xff|w3>>40&0xff<<8)<<48)
		binary.LittleEndian.PutUint64(d2,
			(w0>>16&0xff|w0>>48&0xff<<8)|(w1>>16&0xff|w1>>48&0xff<<8)<<16|
				(w2>>16&0xff|w2>>48&0xff<<8)<<32|(w3>>16&0xff|w3>>48&0xff<<8)<<48)
		binary.LittleEndian.PutUint64(d3,
			(w0>>24&0xff|w0>>56<<8)|(w1>>24&0xff|w1>>56<<8)<<16|
				(w2>>24&0xff|w2>>56<<8)<<32|(w3>>24&0xff|w3>>56<<8)<<48)
		acc = acc[32:]
		d0, d1, d2, d3 = d0[8:], d1[8:], d2[8:], d3[8:]
		n -= 8
	}
	for i := 0; i < n; i++ {
		d0[i] = acc[4*i]
		d1[i] = acc[4*i+1]
		d2[i] = acc[4*i+2]
		d3[i] = acc[4*i+3]
	}
}

// Deinterleave2 transposes a 2-way interleaved accumulator into two
// plain rows: d_r[p] = acc[2*p+r]. Both destinations must share one
// length n with len(acc) >= 2*n. The destinations are overwritten.
func Deinterleave2(acc, d0, d1 []byte) {
	n := len(d0)
	if len(d1) != n {
		panic("gf: Deinterleave2 destination length mismatch")
	}
	if len(acc) < 2*n {
		panic("gf: Deinterleave2 accumulator too short")
	}
	for n >= 8 && len(acc) >= 16 {
		w0 := binary.LittleEndian.Uint64(acc)
		w1 := binary.LittleEndian.Uint64(acc[8:])
		binary.LittleEndian.PutUint64(d0,
			(w0&0xff|w0>>16&0xff<<8|w0>>32&0xff<<16|w0>>48&0xff<<24)|
				(w1&0xff|w1>>16&0xff<<8|w1>>32&0xff<<16|w1>>48&0xff<<24)<<32)
		binary.LittleEndian.PutUint64(d1,
			(w0>>8&0xff|w0>>24&0xff<<8|w0>>40&0xff<<16|w0>>56<<24)|
				(w1>>8&0xff|w1>>24&0xff<<8|w1>>40&0xff<<16|w1>>56<<24)<<32)
		acc = acc[16:]
		d0, d1 = d0[8:], d1[8:]
		n -= 8
	}
	for i := 0; i < n; i++ {
		d0[i] = acc[2*i]
		d1[i] = acc[2*i+1]
	}
}

// MulAdd4 applies four coefficients to one source pass over separate
// destinations: d_r[i] ^= c_r * src[i]. This is the direct (non-tiled)
// fused kernel — one source load serves four parity rows — used where
// the destinations are full rows rather than interleaved tiles, e.g.
// the incremental parity Update path. All slices must share src's
// length and must not overlap src.
func MulAdd4(c0, c1, c2, c3 byte, d0, d1, d2, d3, src []byte) {
	n := len(src)
	if len(d0) != n || len(d1) != n || len(d2) != n || len(d3) != n {
		panic("gf: MulAdd4 length mismatch")
	}
	r0, r1 := &mulTable[c0], &mulTable[c1]
	r2, r3 := &mulTable[c2], &mulTable[c3]
	for n >= 8 {
		w := binary.LittleEndian.Uint64(src)
		b0, b1, b2, b3 := byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		b4, b5, b6, b7 := byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56)
		binary.LittleEndian.PutUint64(d0, binary.LittleEndian.Uint64(d0)^
			(uint64(r0[b0])|uint64(r0[b1])<<8|uint64(r0[b2])<<16|uint64(r0[b3])<<24|
				uint64(r0[b4])<<32|uint64(r0[b5])<<40|uint64(r0[b6])<<48|uint64(r0[b7])<<56))
		binary.LittleEndian.PutUint64(d1, binary.LittleEndian.Uint64(d1)^
			(uint64(r1[b0])|uint64(r1[b1])<<8|uint64(r1[b2])<<16|uint64(r1[b3])<<24|
				uint64(r1[b4])<<32|uint64(r1[b5])<<40|uint64(r1[b6])<<48|uint64(r1[b7])<<56))
		binary.LittleEndian.PutUint64(d2, binary.LittleEndian.Uint64(d2)^
			(uint64(r2[b0])|uint64(r2[b1])<<8|uint64(r2[b2])<<16|uint64(r2[b3])<<24|
				uint64(r2[b4])<<32|uint64(r2[b5])<<40|uint64(r2[b6])<<48|uint64(r2[b7])<<56))
		binary.LittleEndian.PutUint64(d3, binary.LittleEndian.Uint64(d3)^
			(uint64(r3[b0])|uint64(r3[b1])<<8|uint64(r3[b2])<<16|uint64(r3[b3])<<24|
				uint64(r3[b4])<<32|uint64(r3[b5])<<40|uint64(r3[b6])<<48|uint64(r3[b7])<<56))
		src, d0, d1, d2, d3 = src[8:], d0[8:], d1[8:], d2[8:], d3[8:]
		n -= 8
	}
	for i, b := range src {
		d0[i] ^= r0[b]
		d1[i] ^= r1[b]
		d2[i] ^= r2[b]
		d3[i] ^= r3[b]
	}
}

// MulAdd2 applies two coefficients to one source pass over separate
// destinations: d_r[i] ^= c_r * src[i]. See MulAdd4.
func MulAdd2(c0, c1 byte, d0, d1, src []byte) {
	n := len(src)
	if len(d0) != n || len(d1) != n {
		panic("gf: MulAdd2 length mismatch")
	}
	r0, r1 := &mulTable[c0], &mulTable[c1]
	for n >= 8 {
		w := binary.LittleEndian.Uint64(src)
		b0, b1, b2, b3 := byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		b4, b5, b6, b7 := byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56)
		binary.LittleEndian.PutUint64(d0, binary.LittleEndian.Uint64(d0)^
			(uint64(r0[b0])|uint64(r0[b1])<<8|uint64(r0[b2])<<16|uint64(r0[b3])<<24|
				uint64(r0[b4])<<32|uint64(r0[b5])<<40|uint64(r0[b6])<<48|uint64(r0[b7])<<56))
		binary.LittleEndian.PutUint64(d1, binary.LittleEndian.Uint64(d1)^
			(uint64(r1[b0])|uint64(r1[b1])<<8|uint64(r1[b2])<<16|uint64(r1[b3])<<24|
				uint64(r1[b4])<<32|uint64(r1[b5])<<40|uint64(r1[b6])<<48|uint64(r1[b7])<<56))
		src, d0, d1 = src[8:], d0[8:], d1[8:]
		n -= 8
	}
	for i, b := range src {
		d0[i] ^= r0[b]
		d1[i] ^= r1[b]
	}
}

// MulSliceXor materializes a common-subexpression tile in one pass:
// dst[i] = a[i] ^ c*b[i]. The CSE schedule in the rs plan compiler uses
// it to build each temporary t = x_j1 + r·x_j2 with one store instead of
// a copy followed by a MulSliceAdd pass. All slices must share one
// length; dst may alias a (dst == a is the in-place form) but must not
// partially overlap b.
func MulSliceXor(c byte, dst, a, b []byte) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("gf: MulSliceXor length mismatch")
	}
	switch c {
	case 0:
		copy(dst, a)
		return
	case 1:
		XorInto(dst, a, b)
		return
	}
	row := &mulTable[c]
	for len(dst) >= 8 {
		w := binary.LittleEndian.Uint64(b)
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(a)^
			(uint64(row[byte(w)])|uint64(row[byte(w>>8)])<<8|
				uint64(row[byte(w>>16)])<<16|uint64(row[byte(w>>24)])<<24|
				uint64(row[byte(w>>32)])<<32|uint64(row[byte(w>>40)])<<40|
				uint64(row[byte(w>>48)])<<48|uint64(row[byte(w>>56)])<<56))
		dst, a, b = dst[8:], a[8:], b[8:]
	}
	for i := range dst {
		dst[i] = a[i] ^ row[b[i]]
	}
}

// XorInto overwrites dst with the XOR of all sources: dst[i] =
// srcs[0][i] ^ srcs[1][i] ^ ... — a fused replacement for a copy
// followed by repeated AddSlice passes; dst is written exactly once.
// Every source must have dst's length. With no sources dst is zeroed.
func XorInto(dst []byte, srcs ...[]byte) {
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("gf: XorInto length mismatch")
		}
	}
	switch len(srcs) {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, srcs[0])
		return
	}
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		w := binary.LittleEndian.Uint64(srcs[0][i:])
		for _, s := range srcs[1:] {
			w ^= binary.LittleEndian.Uint64(s[i:])
		}
		binary.LittleEndian.PutUint64(dst[i:], w)
	}
	for ; i < n; i++ {
		b := srcs[0][i]
		for _, s := range srcs[1:] {
			b ^= s[i]
		}
		dst[i] = b
	}
}
