package gf

import "encoding/binary"

// NibbleTables holds the two 16-entry lookup tables for a coefficient c,
// mirroring the operand layout ISA-L feeds to VPSHUFB: Lo[x] = c*(x) for
// the low nibble and Hi[x] = c*(x<<4) for the high nibble, so that
// c*b == Lo[b&0xf] ^ Hi[b>>4].
type NibbleTables struct {
	Lo [16]byte
	Hi [16]byte
}

// MakeNibbleTables builds the VPSHUFB-style split tables for coefficient c.
func MakeNibbleTables(c byte) NibbleTables {
	var t NibbleTables
	for x := 0; x < 16; x++ {
		t.Lo[x] = Mul(c, byte(x))
		t.Hi[x] = Mul(c, byte(x<<4))
	}
	return t
}

// Mul applies the split-table multiply to a single byte.
func (t *NibbleTables) Mul(b byte) byte {
	return t.Lo[b&0xf] ^ t.Hi[b>>4]
}

// AddSlice XORs src into dst element-wise: dst[i] ^= src[i].
// It processes eight bytes per iteration. dst and src must be the same
// length.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: AddSlice length mismatch")
	}
	for len(src) >= 8 && len(dst) >= 8 {
		binary.LittleEndian.PutUint64(dst,
			binary.LittleEndian.Uint64(dst)^binary.LittleEndian.Uint64(src))
		dst, src = dst[8:], src[8:]
	}
	for i := range src {
		dst[i] ^= src[i]
	}
}

// MulSlice sets dst[i] = c*src[i], eight source bytes per step: each
// 64-bit source word is split into bytes, multiplied through the
// coefficient's 256-entry table, and reassembled into one destination
// word store. dst and src must be the same length and must not
// partially overlap (dst == src is fine).
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	for len(src) >= 8 && len(dst) >= 8 {
		w := binary.LittleEndian.Uint64(src)
		binary.LittleEndian.PutUint64(dst,
			uint64(row[byte(w)])|uint64(row[byte(w>>8)])<<8|
				uint64(row[byte(w>>16)])<<16|uint64(row[byte(w>>24)])<<24|
				uint64(row[byte(w>>32)])<<32|uint64(row[byte(w>>40)])<<40|
				uint64(row[byte(w>>48)])<<48|uint64(row[byte(w>>56)])<<56)
		dst, src = dst[8:], src[8:]
	}
	for i, b := range src {
		dst[i] = row[b]
	}
}

// MulSliceAdd accumulates dst[i] ^= c*src[i], eight source bytes per
// step with a single destination word read-modify-write. This is the
// single-coefficient inner kernel of table-lookup Reed-Solomon coding;
// the fused multi-row kernels in kernels.go supersede it on the encode
// hot path. dst and src must be the same length and must not partially
// overlap.
func MulSliceAdd(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSliceAdd length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	row := &mulTable[c]
	for len(src) >= 8 && len(dst) >= 8 {
		w := binary.LittleEndian.Uint64(src)
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)^
			(uint64(row[byte(w)])|uint64(row[byte(w>>8)])<<8|
				uint64(row[byte(w>>16)])<<16|uint64(row[byte(w>>24)])<<24|
				uint64(row[byte(w>>32)])<<32|uint64(row[byte(w>>40)])<<40|
				uint64(row[byte(w>>48)])<<48|uint64(row[byte(w>>56)])<<56))
		dst, src = dst[8:], src[8:]
	}
	for i, b := range src {
		dst[i] ^= row[b]
	}
}

// DotSlice computes dst = sum_j coeffs[j]*srcs[j] (element-wise over the
// slices), overwriting dst. All slices must share dst's length and
// len(coeffs) must equal len(srcs).
func DotSlice(coeffs []byte, dst []byte, srcs [][]byte) {
	if len(coeffs) != len(srcs) {
		panic("gf: DotSlice coefficient/source count mismatch")
	}
	clear(dst)
	for j, src := range srcs {
		MulSliceAdd(coeffs[j], dst, src)
	}
}

// The Ref* functions below are the byte-at-a-time scalar kernels the
// word-parallel implementations replaced. They are retained verbatim as
// the reference implementation: the differential fuzz tests pin every
// fast kernel byte-for-byte against them, and rs.(*Code).EncodeRef
// exposes them for old-vs-new benchmarking.

// RefMulSlice is the scalar reference for MulSlice: one table lookup
// per byte.
func RefMulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: RefMulSlice length mismatch")
	}
	row := &mulTable[c]
	for i, b := range src {
		dst[i] = row[b]
	}
}

// RefMulSliceAdd is the scalar reference for MulSliceAdd: one table
// lookup and XOR per byte.
func RefMulSliceAdd(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: RefMulSliceAdd length mismatch")
	}
	row := &mulTable[c]
	for i, b := range src {
		dst[i] ^= row[b]
	}
}

// RefMulSliceXor is the scalar reference for MulSliceXor:
// dst[i] = a[i] ^ c*b[i], one table lookup per byte.
func RefMulSliceXor(c byte, dst, a, b []byte) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("gf: RefMulSliceXor length mismatch")
	}
	row := &mulTable[c]
	for i := range dst {
		dst[i] = a[i] ^ row[b[i]]
	}
}

// RefDotSlice is the scalar reference for DotSlice: a zeroed destination
// accumulated with one RefMulSliceAdd pass per source.
func RefDotSlice(coeffs []byte, dst []byte, srcs [][]byte) {
	if len(coeffs) != len(srcs) {
		panic("gf: RefDotSlice coefficient/source count mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for j, src := range srcs {
		RefMulSliceAdd(coeffs[j], dst, src)
	}
}
