package gf

import "encoding/binary"

// NibbleTables holds the two 16-entry lookup tables for a coefficient c,
// mirroring the operand layout ISA-L feeds to VPSHUFB: Lo[x] = c*(x) for
// the low nibble and Hi[x] = c*(x<<4) for the high nibble, so that
// c*b == Lo[b&0xf] ^ Hi[b>>4].
type NibbleTables struct {
	Lo [16]byte
	Hi [16]byte
}

// MakeNibbleTables builds the VPSHUFB-style split tables for coefficient c.
func MakeNibbleTables(c byte) NibbleTables {
	var t NibbleTables
	for x := 0; x < 16; x++ {
		t.Lo[x] = Mul(c, byte(x))
		t.Hi[x] = Mul(c, byte(x<<4))
	}
	return t
}

// Mul applies the split-table multiply to a single byte.
func (t *NibbleTables) Mul(b byte) byte {
	return t.Lo[b&0xf] ^ t.Hi[b>>4]
}

// AddSlice XORs src into dst element-wise: dst[i] ^= src[i].
// It processes eight bytes per iteration on the aligned middle section.
// dst and src must be the same length.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: AddSlice length mismatch")
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// MulSlice sets dst[i] = c*src[i]. dst and src must be the same length.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	for i, b := range src {
		dst[i] = row[b]
	}
}

// MulSliceAdd accumulates dst[i] ^= c*src[i]. This is the inner kernel of
// table-lookup Reed-Solomon encoding. dst and src must be the same length.
func MulSliceAdd(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: MulSliceAdd length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	row := &mulTable[c]
	for i, b := range src {
		dst[i] ^= row[b]
	}
}

// DotSlice computes dst = sum_j coeffs[j]*srcs[j] (element-wise over the
// slices), overwriting dst. All slices must share dst's length and
// len(coeffs) must equal len(srcs).
func DotSlice(coeffs []byte, dst []byte, srcs [][]byte) {
	if len(coeffs) != len(srcs) {
		panic("gf: DotSlice coefficient/source count mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for j, src := range srcs {
		MulSliceAdd(coeffs[j], dst, src)
	}
}
