// Package gf implements arithmetic over the Galois field GF(2^8).
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by ISA-L,
// Jerasure and most storage erasure-coding libraries, so encoding matrices
// and parity bytes produced here are interoperable with those systems.
//
// The package provides scalar operations (Mul, Div, Inv, Exp), bulk
// slice operations used by the table-lookup codec (MulSlice,
// MulSliceAdd, AddSlice), and the nibble split tables that mirror the
// layout ISA-L feeds to VPSHUFB. Bulk operations process eight bytes per
// step via 64-bit word batching where the operation allows it.
package gf

import "fmt"

// Poly is the primitive polynomial used to construct GF(2^8),
// expressed with the implicit x^8 term included (0x11d).
const Poly = 0x11d

// FieldSize is the number of elements in GF(2^8).
const FieldSize = 256

var (
	// expTable[i] = alpha^i for i in [0, 510); doubled so that
	// mulLogs can index without a modular reduction.
	expTable [510]byte
	// logTable[x] = log_alpha(x) for x != 0. logTable[0] is unused.
	logTable [256]int
	// mulTable[a][b] = a*b in GF(2^8). 64 KiB; stays hot in L2.
	mulTable [256][256]byte
	// invTable[x] = x^-1 for x != 0.
	invTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 510; i++ {
		expTable[i] = expTable[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			mulTable[a][b] = expTable[logTable[a]+logTable[b]]
		}
	}
	for a := 1; a < 256; a++ {
		invTable[a] = expTable[255-logTable[a]]
	}
}

// Add returns a+b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is the same operation.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Div returns a/b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[logTable[a]+255-logTable[b]]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: zero has no inverse")
	}
	return invTable[a]
}

// Exp returns alpha^n where alpha is the primitive element (2).
// n may be any non-negative integer.
func Exp(n int) byte {
	if n < 0 {
		panic(fmt.Sprintf("gf: negative exponent %d", n))
	}
	return expTable[n%255]
}

// Log returns log_alpha(a). It panics if a == 0.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return logTable[a]
}

// Pow returns a^n in GF(2^8). a may be zero (0^0 == 1 by convention).
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(logTable[a]*n)%255]
}

// MulRow returns the 256-entry multiplication row for coefficient c,
// i.e. table[x] = c*x. The row aliases internal storage and must not be
// modified by the caller.
func MulRow(c byte) *[256]byte { return &mulTable[c] }
