package gf

import "hash/crc32"

// CRC-32C (Castagnoli) helpers for the fused encode+checksum path.
//
// The tiled encode plan in internal/rs folds the per-block CRC into the
// same 4 KiB tile sweep that computes parity, so each stripe is read
// once while L1-resident instead of once for GF math and once for the
// trailer pass. These wrappers exist so every layer (rs plan sweep,
// stream trailers, shardfile headers and scrub) shares one table and
// one spelling of "Castagnoli"; hash/crc32 dispatches to the hardware
// CRC32 instruction on amd64/arm64, so an incremental tile-sized Update
// costs the same per byte as one big Checksum.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the CRC-32C (Castagnoli) checksum of p.
func CRC32C(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}

// CRC32CUpdate folds p into a running CRC-32C: feeding consecutive
// slices of a block through CRC32CUpdate (starting from 0) yields
// exactly CRC32C of the concatenation, which is what lets the encode
// plan checksum tile-by-tile.
func CRC32CUpdate(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}
