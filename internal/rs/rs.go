// Package rs implements systematic Reed-Solomon erasure coding over
// GF(2^8) in the RS(k+m, k) configuration used throughout the DIALGA
// paper: k data blocks are encoded into m parity blocks forming a stripe
// of k+m blocks, any k of which suffice to reconstruct the stripe.
//
// The encoder follows the fused-kernel strategy of ISA-L's
// gf_4vect_dot_prod lineage: at New time the m x k parity coefficients
// are compiled into an encode plan whose rows are grouped 4/2/1-wide
// with packed multi-row lookup tables, and Encode walks the stripe in
// L1-sized tiles advancing every parity row of a group per source pass —
// each data byte is loaded once per row group instead of once per parity
// row. Decoding compiles the same kind of plan per erasure pattern and
// caches it, so steady-state repair shares the encode kernels and
// performs no table or matrix work per call.
package rs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
)

// MatrixKind selects the generator-matrix construction.
type MatrixKind int

const (
	// CauchyMatrix is the default: systematic Cauchy generator,
	// MDS for all k+m <= 256.
	CauchyMatrix MatrixKind = iota
	// VandermondeMatrix is the systematized extended Vandermonde
	// construction (ISA-L's gf_gen_rs_matrix lineage).
	VandermondeMatrix
)

// Code is an RS(k+m, k) code instance. The coding parameters are
// immutable; an internal decode-plan cache makes repeated repairs of the
// same erasure pattern cheap. Code is safe for concurrent use.
type Code struct {
	k, m   int
	gen    *ecmatrix.Matrix // (k+m) x k systematic generator
	parity *ecmatrix.Matrix // m x k parity rows
	plan   *encodePlan      // fused tiled encode plan over the parity rows

	mu       sync.RWMutex
	decode   map[erasureKey]*decodeEntry
	useClock atomic.Uint64 // LRU clock for decode-plan eviction
}

// New constructs an RS code with k data and m parity blocks using a
// Cauchy generator matrix.
func New(k, m int) (*Code, error) { return NewWithMatrix(k, m, CauchyMatrix) }

// NewWithMatrix constructs an RS code with an explicit matrix kind.
func NewWithMatrix(k, m int, kind MatrixKind) (*Code, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rs: k must be positive, got %d", k)
	}
	if m <= 0 {
		return nil, fmt.Errorf("rs: m must be positive, got %d", m)
	}
	if k+m > gf.FieldSize {
		return nil, fmt.Errorf("rs: k+m = %d exceeds field size %d", k+m, gf.FieldSize)
	}
	var gen *ecmatrix.Matrix
	switch kind {
	case CauchyMatrix:
		gen = ecmatrix.Cauchy(k, m)
	case VandermondeMatrix:
		gen = ecmatrix.Vandermonde(k, m)
	default:
		return nil, fmt.Errorf("rs: unknown matrix kind %d", kind)
	}
	parity := ecmatrix.ParityRows(gen, k)
	return &Code{
		k:      k,
		m:      m,
		gen:    gen,
		parity: parity,
		plan:   buildPlan(parity),
		decode: make(map[erasureKey]*decodeEntry),
	}, nil
}

// K returns the number of data blocks per stripe.
func (c *Code) K() int { return c.k }

// M returns the number of parity blocks per stripe.
func (c *Code) M() int { return c.m }

// Generator returns a copy of the (k+m) x k generator matrix.
func (c *Code) Generator() *ecmatrix.Matrix { return c.gen.Clone() }

// ParityMatrix returns a copy of the m x k parity rows.
func (c *Code) ParityMatrix() *ecmatrix.Matrix { return c.parity.Clone() }

var (
	// ErrBlockCount indicates the slice-of-blocks argument has the
	// wrong number of blocks for this code.
	ErrBlockCount = errors.New("rs: wrong number of blocks")
	// ErrBlockSize indicates blocks of differing (or zero) lengths.
	ErrBlockSize = errors.New("rs: blocks must be non-empty and equally sized")
	// ErrTooManyErasures indicates more than m blocks are missing.
	ErrTooManyErasures = errors.New("rs: more erasures than parity blocks")
)

// checkBlocks validates a stripe that may contain missing blocks
// (length zero) and returns the common size of the present ones.
func checkBlocks(blocks [][]byte, want int) (int, error) {
	if len(blocks) != want {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBlockCount, len(blocks), want)
	}
	size := -1
	for _, b := range blocks {
		if len(b) == 0 {
			continue
		}
		if size == -1 {
			size = len(b)
		} else if len(b) != size {
			return 0, ErrBlockSize
		}
	}
	if size <= 0 {
		return 0, ErrBlockSize
	}
	return size, nil
}

// checkPresent validates a block set in which every block must be
// present and equally sized.
func checkPresent(blocks [][]byte, want int) (int, error) {
	if len(blocks) != want {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBlockCount, len(blocks), want)
	}
	size := len(blocks[0])
	if size == 0 {
		return 0, ErrBlockSize
	}
	for _, b := range blocks[1:] {
		if len(b) != size {
			return 0, ErrBlockSize
		}
	}
	return size, nil
}

func (c *Code) checkEncodeArgs(data, parity [][]byte) (int, error) {
	size, err := checkPresent(data, c.k)
	if err != nil {
		return 0, err
	}
	if len(parity) != c.m {
		return 0, fmt.Errorf("%w: got %d parity blocks, want %d", ErrBlockCount, len(parity), c.m)
	}
	for _, p := range parity {
		if len(p) != size {
			return 0, ErrBlockSize
		}
	}
	return size, nil
}

// Encode computes the m parity blocks for the given k data blocks,
// writing into parity (which must contain m slices of the data block
// size). The steady-state path allocates nothing: tile scratch comes
// from an internal pool.
func (c *Code) Encode(data, parity [][]byte) error {
	size, err := c.checkEncodeArgs(data, parity)
	if err != nil {
		return err
	}
	c.plan.apply(parity, data, size)
	return nil
}

// EncodeSum computes parity and the CRC-32C (Castagnoli) checksum of
// every block of the stripe in a single fused pass, returning k+m sums
// in stripe order (data 0..k-1, then parity k..k+m-1). Each 4 KiB tile
// is checksummed while it is L1-resident for the GF sweep, so the
// stripe is read once instead of once for parity and once for trailers.
// The sums are bit-identical to gf.CRC32C over each whole block.
func (c *Code) EncodeSum(data, parity [][]byte) ([]uint32, error) {
	sums := make([]uint32, c.k+c.m)
	if err := c.EncodeSumInto(sums, data, parity); err != nil {
		return nil, err
	}
	return sums, nil
}

// EncodeSumInto is EncodeSum writing into a caller-supplied sums slice
// of length k+m — the allocation-free form the streaming encoder's
// workers use. sums is overwritten.
func (c *Code) EncodeSumInto(sums []uint32, data, parity [][]byte) error {
	size, err := c.checkEncodeArgs(data, parity)
	if err != nil {
		return err
	}
	if len(sums) != c.k+c.m {
		return fmt.Errorf("%w: got %d sums, want k+m=%d", ErrBlockCount, len(sums), c.k+c.m)
	}
	clear(sums)
	c.plan.sweep(parity, data, size, sums[:c.k], sums[c.k:])
	return nil
}

// EncodeRef computes the same parity as Encode using the scalar
// byte-at-a-time reference kernels, one independent dot-product pass per
// parity row. It is the pre-fused-kernel implementation, retained as the
// differential-testing and benchmarking baseline.
func (c *Code) EncodeRef(data, parity [][]byte) error {
	if _, err := c.checkEncodeArgs(data, parity); err != nil {
		return err
	}
	for i := 0; i < c.m; i++ {
		gf.RefDotSlice(c.parity.Row(i), parity[i], data)
	}
	return nil
}

// EncodeAppend is a convenience wrapper that allocates and returns the
// parity blocks.
func (c *Code) EncodeAppend(data [][]byte) ([][]byte, error) {
	size, err := checkPresent(data, c.k)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	if err := c.Encode(data, parity); err != nil {
		return nil, err
	}
	return parity, nil
}

// Verify reports whether the parity blocks are consistent with the data
// blocks. Parity is recomputed tile by tile into pooled scratch and
// compared word-at-a-time, returning false at the first mismatching
// tile without recomputing the remainder of the stripe.
func (c *Code) Verify(data, parity [][]byte) (bool, error) {
	size, err := checkPresent(data, c.k)
	if err != nil {
		return false, err
	}
	if len(parity) != c.m {
		return false, ErrBlockCount
	}
	for _, p := range parity {
		if len(p) != size {
			return false, ErrBlockSize
		}
	}
	return c.plan.verify(parity, data, size), nil
}

// Reconstruct repairs a stripe in place. blocks must hold k+m entries in
// stripe order (data blocks 0..k-1 then parity k..k+m-1); missing blocks
// are nil or zero-length. On success every missing entry is replaced
// with its reconstructed content; a zero-length entry with capacity >=
// the block size has its backing array reused, so a caller that recycles
// stripes can repair without per-call allocation. At most m entries may
// be missing.
func (c *Code) Reconstruct(blocks [][]byte) error {
	return c.reconstruct(blocks, true, nil)
}

// ReconstructSum is Reconstruct with fused checksums for the repair
// path: sums must hold k+m entries, and for every block the call
// rebuilds, sums[i] is set to the block's CRC-32C folded during the
// same tile sweep that produced the bytes. Entries for blocks that were
// already present are left untouched.
func (c *Code) ReconstructSum(blocks [][]byte, sums []uint32) error {
	if len(sums) != c.k+c.m {
		return fmt.Errorf("%w: got %d sums, want k+m=%d", ErrBlockCount, len(sums), c.k+c.m)
	}
	return c.reconstruct(blocks, true, sums)
}

// ReconstructData repairs only the data blocks of a stripe in place,
// skipping parity rebuilds — the fast path for serving reads from a
// degraded stripe. blocks follows the Reconstruct convention; on return
// blocks[0:k] are all present.
func (c *Code) ReconstructData(blocks [][]byte) error {
	return c.reconstruct(blocks, false, nil)
}

func (c *Code) reconstruct(blocks [][]byte, withParity bool, sums []uint32) error {
	size, err := checkBlocks(blocks, c.k+c.m)
	if err != nil {
		return err
	}
	key, missing := erasureKeyOf(blocks)
	if missing == 0 {
		return nil
	}
	if missing > c.m {
		return fmt.Errorf("%w: %d missing, m=%d", ErrTooManyErasures, missing, c.m)
	}
	e, err := c.decodeEntryFor(key)
	if err != nil {
		return err
	}
	if len(e.missingData) == 0 && !withParity {
		return nil
	}
	sc := reconPool.Get().(*reconScratch)
	if len(e.missingData) > 0 {
		srcs := sc.srcs[:0]
		for _, idx := range e.chosen {
			srcs = append(srcs, blocks[idx])
		}
		dsts := sc.dsts[:0]
		for _, idx := range e.missingData {
			blocks[idx] = outBuf(blocks[idx], size)
			dsts = append(dsts, blocks[idx])
		}
		sc.srcs, sc.dsts = srcs, dsts
		e.dataPlan.sweep(dsts, srcs, size, nil, sc.sumViews(sums, e.missingData))
		sc.scatterSums(sums, e.missingData)
	}
	if withParity && len(e.missingParity) > 0 {
		dsts := sc.dsts[:0]
		for _, idx := range e.missingParity {
			blocks[idx] = outBuf(blocks[idx], size)
			dsts = append(dsts, blocks[idx])
		}
		sc.dsts = dsts
		// Data is complete now, so missing parity is plain re-encoding.
		e.parityPlan.sweep(dsts, blocks[:c.k], size, nil, sc.sumViews(sums, e.missingParity))
		sc.scatterSums(sums, e.missingParity)
	}
	sc.release()
	return nil
}

// DecodeMatrix returns the k x k matrix that reconstructs the original
// data blocks from the survivor blocks listed in survivors (stripe
// indices, exactly k of them). This is the matrix an ISA-L style decoder
// feeds to the same table-lookup kernel as encoding, which is why decode
// shares encode's memory-access pattern (§4.1 "Other Coding Tasks").
func (c *Code) DecodeMatrix(survivors []int) (*ecmatrix.Matrix, error) {
	if len(survivors) != c.k {
		return nil, fmt.Errorf("%w: need exactly k=%d survivors", ErrBlockCount, c.k)
	}
	sub := c.gen.SubMatrix(survivors)
	return sub.Invert()
}

// Update performs an incremental parity update after data block idx
// changes from oldData to newData, adjusting parity in place. This is
// the read-modify-write path a PM store uses for small overwrites. The
// delta scratch is pooled and the parity rows are advanced with fused
// 4/2/1-row kernels, so one delta pass serves up to four parity rows.
func (c *Code) Update(idx int, oldData, newData []byte, parity [][]byte) error {
	if idx < 0 || idx >= c.k {
		return fmt.Errorf("rs: update index %d out of range [0,%d)", idx, c.k)
	}
	if len(oldData) != len(newData) {
		return ErrBlockSize
	}
	if len(parity) != c.m {
		return ErrBlockCount
	}
	for _, p := range parity {
		if len(p) != len(oldData) {
			return ErrBlockSize
		}
	}
	bp, delta := getBuf(len(oldData))
	gf.XorInto(delta, oldData, newData)
	i := 0
	for ; c.m-i >= 4; i += 4 {
		gf.MulAdd4(
			c.parity.At(i, idx), c.parity.At(i+1, idx),
			c.parity.At(i+2, idx), c.parity.At(i+3, idx),
			parity[i], parity[i+1], parity[i+2], parity[i+3], delta)
	}
	if c.m-i >= 2 {
		gf.MulAdd2(c.parity.At(i, idx), c.parity.At(i+1, idx),
			parity[i], parity[i+1], delta)
		i += 2
	}
	if i < c.m {
		gf.MulSliceAdd(c.parity.At(i, idx), parity[i], delta)
	}
	putBuf(bp)
	return nil
}
