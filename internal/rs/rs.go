// Package rs implements systematic Reed-Solomon erasure coding over
// GF(2^8) in the RS(k+m, k) configuration used throughout the DIALGA
// paper: k data blocks are encoded into m parity blocks forming a stripe
// of k+m blocks, any k of which suffice to reconstruct the stripe.
//
// The encoder uses the table-lookup strategy of ISA-L: each parity byte
// is a GF dot product of the corresponding data bytes, computed with
// per-coefficient multiplication tables, reading every data block exactly
// once.
package rs

import (
	"errors"
	"fmt"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
)

// MatrixKind selects the generator-matrix construction.
type MatrixKind int

const (
	// CauchyMatrix is the default: systematic Cauchy generator,
	// MDS for all k+m <= 256.
	CauchyMatrix MatrixKind = iota
	// VandermondeMatrix is the systematized extended Vandermonde
	// construction (ISA-L's gf_gen_rs_matrix lineage).
	VandermondeMatrix
)

// Code is an immutable RS(k+m, k) code instance. It is safe for
// concurrent use.
type Code struct {
	k, m   int
	gen    *ecmatrix.Matrix // (k+m) x k systematic generator
	parity *ecmatrix.Matrix // m x k parity rows
}

// New constructs an RS code with k data and m parity blocks using a
// Cauchy generator matrix.
func New(k, m int) (*Code, error) { return NewWithMatrix(k, m, CauchyMatrix) }

// NewWithMatrix constructs an RS code with an explicit matrix kind.
func NewWithMatrix(k, m int, kind MatrixKind) (*Code, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rs: k must be positive, got %d", k)
	}
	if m <= 0 {
		return nil, fmt.Errorf("rs: m must be positive, got %d", m)
	}
	if k+m > gf.FieldSize {
		return nil, fmt.Errorf("rs: k+m = %d exceeds field size %d", k+m, gf.FieldSize)
	}
	var gen *ecmatrix.Matrix
	switch kind {
	case CauchyMatrix:
		gen = ecmatrix.Cauchy(k, m)
	case VandermondeMatrix:
		gen = ecmatrix.Vandermonde(k, m)
	default:
		return nil, fmt.Errorf("rs: unknown matrix kind %d", kind)
	}
	return &Code{k: k, m: m, gen: gen, parity: ecmatrix.ParityRows(gen, k)}, nil
}

// K returns the number of data blocks per stripe.
func (c *Code) K() int { return c.k }

// M returns the number of parity blocks per stripe.
func (c *Code) M() int { return c.m }

// Generator returns a copy of the (k+m) x k generator matrix.
func (c *Code) Generator() *ecmatrix.Matrix { return c.gen.Clone() }

// ParityMatrix returns a copy of the m x k parity rows.
func (c *Code) ParityMatrix() *ecmatrix.Matrix { return c.parity.Clone() }

var (
	// ErrBlockCount indicates the slice-of-blocks argument has the
	// wrong number of blocks for this code.
	ErrBlockCount = errors.New("rs: wrong number of blocks")
	// ErrBlockSize indicates blocks of differing (or zero) lengths.
	ErrBlockSize = errors.New("rs: blocks must be non-empty and equally sized")
	// ErrTooManyErasures indicates more than m blocks are missing.
	ErrTooManyErasures = errors.New("rs: more erasures than parity blocks")
)

func checkBlocks(blocks [][]byte, want int) (int, error) {
	if len(blocks) != want {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrBlockCount, len(blocks), want)
	}
	size := -1
	for _, b := range blocks {
		if b == nil {
			continue
		}
		if size == -1 {
			size = len(b)
		} else if len(b) != size {
			return 0, ErrBlockSize
		}
	}
	if size <= 0 {
		return 0, ErrBlockSize
	}
	return size, nil
}

// Encode computes the m parity blocks for the given k data blocks,
// writing into parity (which must contain m slices of the data block
// size).
func (c *Code) Encode(data, parity [][]byte) error {
	size, err := checkBlocks(data, c.k)
	if err != nil {
		return err
	}
	if len(parity) != c.m {
		return fmt.Errorf("%w: got %d parity blocks, want %d", ErrBlockCount, len(parity), c.m)
	}
	for _, p := range parity {
		if len(p) != size {
			return ErrBlockSize
		}
	}
	for i := 0; i < c.m; i++ {
		gf.DotSlice(c.parity.Row(i), parity[i], data)
	}
	return nil
}

// EncodeAppend is a convenience wrapper that allocates and returns the
// parity blocks.
func (c *Code) EncodeAppend(data [][]byte) ([][]byte, error) {
	size, err := checkBlocks(data, c.k)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	if err := c.Encode(data, parity); err != nil {
		return nil, err
	}
	return parity, nil
}

// Verify reports whether the parity blocks are consistent with the data
// blocks.
func (c *Code) Verify(data, parity [][]byte) (bool, error) {
	size, err := checkBlocks(data, c.k)
	if err != nil {
		return false, err
	}
	if len(parity) != c.m {
		return false, ErrBlockCount
	}
	buf := make([]byte, size)
	for i := 0; i < c.m; i++ {
		if len(parity[i]) != size {
			return false, ErrBlockSize
		}
		gf.DotSlice(c.parity.Row(i), buf, data)
		for j := range buf {
			if buf[j] != parity[i][j] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct repairs a stripe in place. blocks must hold k+m entries in
// stripe order (data blocks 0..k-1 then parity k..k+m-1); missing blocks
// are nil. On success every nil entry is replaced with its reconstructed
// content. At most m entries may be nil.
func (c *Code) Reconstruct(blocks [][]byte) error {
	size, err := checkBlocks(blocks, c.k+c.m)
	if err != nil {
		return err
	}
	var missing []int
	var survivors []int
	for i, b := range blocks {
		if b == nil {
			missing = append(missing, i)
		} else {
			survivors = append(survivors, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > c.m {
		return fmt.Errorf("%w: %d missing, m=%d", ErrTooManyErasures, len(missing), c.m)
	}
	// Decode the data blocks from the first k survivors.
	chosen := survivors[:c.k]
	sub := c.gen.SubMatrix(chosen)
	inv, err := sub.Invert()
	if err != nil {
		// Cannot happen for an MDS generator; surface it anyway.
		return fmt.Errorf("rs: survivor matrix singular: %w", err)
	}
	srcs := make([][]byte, c.k)
	for i, idx := range chosen {
		srcs[i] = blocks[idx]
	}
	// Rebuild missing data blocks.
	for _, idx := range missing {
		if idx >= c.k {
			continue
		}
		out := make([]byte, size)
		gf.DotSlice(inv.Row(idx), out, srcs)
		blocks[idx] = out
	}
	// Rebuild missing parity blocks: decodeRow = parityRow * inv gives
	// coefficients over the survivor blocks; equivalently re-encode from
	// the (now complete) data blocks.
	var needParity bool
	for _, idx := range missing {
		if idx >= c.k {
			needParity = true
		}
	}
	if needParity {
		data := blocks[:c.k]
		for _, idx := range missing {
			if idx < c.k {
				continue
			}
			out := make([]byte, size)
			gf.DotSlice(c.parity.Row(idx-c.k), out, data)
			blocks[idx] = out
		}
	}
	return nil
}

// ReconstructData repairs only the data blocks of a stripe in place,
// skipping parity rebuilds — the fast path for serving reads from a
// degraded stripe. blocks must hold k+m entries in stripe order with
// nil for missing blocks; on return blocks[0:k] are all present.
func (c *Code) ReconstructData(blocks [][]byte) error {
	size, err := checkBlocks(blocks, c.k+c.m)
	if err != nil {
		return err
	}
	var missingData []int
	var survivors []int
	missing := 0
	for i, b := range blocks {
		if b == nil {
			missing++
			if i < c.k {
				missingData = append(missingData, i)
			}
		} else {
			survivors = append(survivors, i)
		}
	}
	if missing > c.m {
		return fmt.Errorf("%w: %d missing, m=%d", ErrTooManyErasures, missing, c.m)
	}
	if len(missingData) == 0 {
		return nil
	}
	chosen := survivors[:c.k]
	sub := c.gen.SubMatrix(chosen)
	inv, err := sub.Invert()
	if err != nil {
		return fmt.Errorf("rs: survivor matrix singular: %w", err)
	}
	srcs := make([][]byte, c.k)
	for i, idx := range chosen {
		srcs[i] = blocks[idx]
	}
	for _, idx := range missingData {
		out := make([]byte, size)
		gf.DotSlice(inv.Row(idx), out, srcs)
		blocks[idx] = out
	}
	return nil
}

// DecodeMatrix returns the k x k matrix that reconstructs the original
// data blocks from the survivor blocks listed in survivors (stripe
// indices, exactly k of them). This is the matrix an ISA-L style decoder
// feeds to the same table-lookup kernel as encoding, which is why decode
// shares encode's memory-access pattern (§4.1 "Other Coding Tasks").
func (c *Code) DecodeMatrix(survivors []int) (*ecmatrix.Matrix, error) {
	if len(survivors) != c.k {
		return nil, fmt.Errorf("%w: need exactly k=%d survivors", ErrBlockCount, c.k)
	}
	sub := c.gen.SubMatrix(survivors)
	return sub.Invert()
}

// Update performs an incremental parity update after data block idx
// changes from oldData to newData, adjusting parity in place. This is
// the read-modify-write path a PM store uses for small overwrites.
func (c *Code) Update(idx int, oldData, newData []byte, parity [][]byte) error {
	if idx < 0 || idx >= c.k {
		return fmt.Errorf("rs: update index %d out of range [0,%d)", idx, c.k)
	}
	if len(oldData) != len(newData) {
		return ErrBlockSize
	}
	if len(parity) != c.m {
		return ErrBlockCount
	}
	delta := make([]byte, len(oldData))
	copy(delta, oldData)
	gf.AddSlice(delta, newData)
	for i := 0; i < c.m; i++ {
		if len(parity[i]) != len(delta) {
			return ErrBlockSize
		}
		gf.MulSliceAdd(c.parity.At(i, idx), parity[i], delta)
	}
	return nil
}
