package rs

import "dialga/internal/gf"

// Common-subexpression elimination over the byte coefficient matrix —
// the GF(2^8) generalization of the XOR-pair extraction in
// internal/xorec/cse.go (Uezato, SC'21). Two columns j1 < j2 form a
// common subexpression for row i whenever both coefficients are nonzero:
// with r = m[i][j2] / m[i][j1], the row's contribution
//
//	m[i][j1]*x_j1 + m[i][j2]*x_j2 == m[i][j1] * (x_j1 + r*x_j2)
//
// so every row sharing the same ratio r for the pair (j1, j2) can read
// one precomputed temporary t = x_j1 + r*x_j2 instead of two sources.
// The search greedily extracts the (j1, j2, r) triple shared by the most
// rows, appends t as a fresh matrix column (temporaries may themselves
// pair with sources or other temporaries in later iterations), and
// repeats until no triple is shared by at least two rows.
//
// Whether the extracted schedule is actually cheaper than the plain
// quad/pair-grouped sweep is a separate question — a pair must vanish
// across a *whole* row group before the group's source sweep shrinks —
// so buildPlan compiles both schedules, prices them with scheduleCost,
// and keeps the plain one unless the CSE schedule strictly wins.

// tempDef describes one pooled temporary tile: t = s(a) ^ cb * s(b),
// where s(i) is source column i for i < cols and temporary i-cols
// otherwise. Temporaries only reference earlier temporaries, so
// evaluating them in definition order is always valid.
type tempDef struct {
	a, b int
	cb   byte
}

// cseExtract runs the greedy pair extraction over a row-major
// coefficient matrix, returning the rewritten (widened) rows and the
// temporary definitions, in evaluation order. rows is mutated.
func cseExtract(rows [][]byte) ([][]byte, []tempDef) {
	var temps []tempDef
	for {
		best, bestN := tempDef{}, 1
		counts := make(map[tempDef]int)
		width := len(rows[0])
		for _, row := range rows {
			for a := 0; a < width; a++ {
				if row[a] == 0 {
					continue
				}
				for b := a + 1; b < width; b++ {
					if row[b] == 0 {
						continue
					}
					cand := tempDef{a: a, b: b, cb: gf.Div(row[b], row[a])}
					counts[cand]++
					// Strict > with deterministic row/column iteration
					// keeps the extraction order stable across runs.
					if counts[cand] > bestN {
						best, bestN = cand, counts[cand]
					}
				}
			}
		}
		if bestN < 2 {
			return rows, temps
		}
		for i, row := range rows {
			rows[i] = append(row, 0)
			row = rows[i]
			if row[best.a] != 0 && row[best.b] != 0 &&
				gf.Div(row[best.b], row[best.a]) == best.cb {
				row[width] = row[best.a]
				row[best.a], row[best.b] = 0, 0
			}
		}
		temps = append(temps, best)
	}
}

// scheduleCost prices a compiled schedule in table lookups + memory
// touches per tile byte — the two quantities the word-parallel kernels
// spend. Per active column of a row group the fused kernels perform one
// packed-table lookup, one source load, and one accumulator
// read-modify-write (3 units); each group additionally clears and
// de-interleaves its accumulator once per row (2 units per row, equal
// across candidate schedules since grouping never changes row count).
// Each temporary costs one load per operand plus one store, plus a
// lookup unless its coefficient is 1 (plain XOR).
func scheduleCost(groups []rowGroup, temps []tempDef) int {
	cost := 0
	for _, td := range temps {
		cost += 3
		if td.cb != 1 {
			cost++
		}
	}
	for gi := range groups {
		g := &groups[gi]
		cost += 3 * len(g.cols)
		cost += 2 * g.n
	}
	return cost
}
