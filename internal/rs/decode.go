package rs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// maxDecodeEntries bounds the per-Code decode-plan cache. Real stripes
// cycle through a handful of erasure patterns (a failed device erases
// the same block index in every stripe), so 64 patterns is far more than
// steady state needs while keeping worst-case memory bounded.
const maxDecodeEntries = 64

// erasureKey is the bitmap of missing block indices in a stripe —
// k+m <= 256, so 32 bytes always suffice.
type erasureKey [32]byte

// erasureKeyOf returns the missing-block bitmap and the number of
// missing blocks. A block is missing when its length is zero: nil, or a
// zero-length slice whose capacity the decoder may reuse as the output
// buffer.
func erasureKeyOf(blocks [][]byte) (erasureKey, int) {
	var key erasureKey
	missing := 0
	for i, b := range blocks {
		if len(b) == 0 {
			key[i>>3] |= 1 << (i & 7)
			missing++
		}
	}
	return key, missing
}

// decodeEntry is the compiled decoder for one erasure pattern: the
// survivor blocks chosen as sources, plus fused plans for the missing
// data rows (inverted-submatrix coefficients over the survivors) and the
// missing parity rows (generator coefficients over the repaired data).
// Entries are immutable once built and shared across goroutines; used is
// the LRU stamp, refreshed on every cache hit.
type decodeEntry struct {
	chosen        []int // k survivor stripe indices, ascending
	missingData   []int
	missingParity []int
	dataPlan      *encodePlan // nil when no data block is missing
	parityPlan    *encodePlan // nil when no parity block is missing
	used          atomic.Uint64
}

// decodeEntryFor returns the cached decoder for the erasure pattern,
// building and inserting it on first use. Every hit refreshes the
// entry's LRU stamp, and a full cache evicts the least-recently-used
// entry — so the steady-state pattern of a failed device is never
// displaced by a churn of one-off patterns.
func (c *Code) decodeEntryFor(key erasureKey) (*decodeEntry, error) {
	c.mu.RLock()
	e := c.decode[key]
	c.mu.RUnlock()
	if e != nil {
		e.used.Store(c.useClock.Add(1))
		return e, nil
	}
	e, err := c.buildDecodeEntry(key)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if prev := c.decode[key]; prev != nil {
		e = prev // lost a build race; keep the established entry
	} else {
		if len(c.decode) >= maxDecodeEntries {
			var coldKey erasureKey
			coldUsed := uint64(0)
			first := true
			for k, cand := range c.decode {
				if u := cand.used.Load(); first || u < coldUsed {
					coldKey, coldUsed, first = k, u, false
				}
			}
			delete(c.decode, coldKey)
		}
		c.decode[key] = e
	}
	c.mu.Unlock()
	e.used.Store(c.useClock.Add(1))
	return e, nil
}

func (c *Code) buildDecodeEntry(key erasureKey) (*decodeEntry, error) {
	e := &decodeEntry{}
	for i := 0; i < c.k+c.m; i++ {
		switch {
		case key[i>>3]&(1<<(i&7)) != 0:
			if i < c.k {
				e.missingData = append(e.missingData, i)
			} else {
				e.missingParity = append(e.missingParity, i)
			}
		case len(e.chosen) < c.k:
			e.chosen = append(e.chosen, i)
		}
	}
	if len(e.missingData) > 0 {
		sub := c.gen.SubMatrix(e.chosen)
		inv, err := sub.Invert()
		if err != nil {
			// Cannot happen for an MDS generator; surface it anyway.
			return nil, fmt.Errorf("rs: survivor matrix singular: %w", err)
		}
		e.dataPlan = buildPlan(inv.SubMatrix(e.missingData))
	}
	if len(e.missingParity) > 0 {
		rows := make([]int, len(e.missingParity))
		for i, idx := range e.missingParity {
			rows[i] = idx - c.k
		}
		e.parityPlan = buildPlan(c.parity.SubMatrix(rows))
	}
	return e, nil
}

// reconScratch pools the small gather slices a reconstruction needs, so
// the steady-state repair path performs no allocations beyond output
// buffers the caller did not supply. sums is the dense CRC accumulator
// the fused ReconstructSum path sweeps into before scattering to the
// caller's stripe-indexed slice.
type reconScratch struct {
	srcs [][]byte
	dsts [][]byte
	sums []uint32
}

var reconPool = sync.Pool{New: func() any { return new(reconScratch) }}

// sumViews returns a zeroed dense CRC accumulator with one slot per
// rebuilt index, or nil when the caller asked for no sums.
func (s *reconScratch) sumViews(sums []uint32, idxs []int) []uint32 {
	if sums == nil {
		return nil
	}
	if cap(s.sums) < len(idxs) {
		s.sums = make([]uint32, len(idxs))
	}
	s.sums = s.sums[:len(idxs)]
	clear(s.sums)
	return s.sums
}

// scatterSums copies the dense accumulator back to the caller's
// stripe-indexed sums.
func (s *reconScratch) scatterSums(sums []uint32, idxs []int) {
	if sums == nil {
		return
	}
	for i, idx := range idxs {
		sums[idx] = s.sums[i]
	}
}

func (s *reconScratch) release() {
	clear(s.srcs) // drop references to caller blocks
	clear(s.dsts)
	s.srcs, s.dsts = s.srcs[:0], s.dsts[:0]
	reconPool.Put(s)
}

// outBuf returns a length-size output buffer for a missing block,
// reusing b's capacity when the caller supplied a zero-length slice
// large enough, and allocating otherwise. The contents need not be
// zeroed: every plan output path overwrites its destination completely.
func outBuf(b []byte, size int) []byte {
	if cap(b) >= size {
		return b[:size]
	}
	return make([]byte, size)
}
