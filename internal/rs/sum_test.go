package rs

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
)

// twoPassSums is the reference the fused path must match: scalar encode
// via EncodeRef, then a separate stdlib CRC-32C pass over every block.
func twoPassSums(t testing.TB, c *Code, data [][]byte, size int) ([][]byte, []uint32) {
	t.Helper()
	parity := make([][]byte, c.M())
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	if err := c.EncodeRef(data, parity); err != nil {
		t.Fatal(err)
	}
	table := crc32.MakeTable(crc32.Castagnoli)
	sums := make([]uint32, c.K()+c.M())
	for i, b := range data {
		sums[i] = crc32.Checksum(b, table)
	}
	for i, b := range parity {
		sums[c.K()+i] = crc32.Checksum(b, table)
	}
	return parity, sums
}

// TestEncodeSumMatchesTwoPass pins the fused encode+CRC sweep — parity
// bytes and all k+m checksums — against the two-pass scalar reference
// across all group shapes and tile-edge sizes.
func TestEncodeSumMatchesTwoPass(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for _, sh := range fusedShapes {
		c, err := New(sh.k, sh.m)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range fusedSizes {
			data, parity := makeStripe(r, sh.k, sh.m, size)
			sums, err := c.EncodeSum(data, parity)
			if err != nil {
				t.Fatal(err)
			}
			wantParity, wantSums := twoPassSums(t, c, data, size)
			for i := range wantParity {
				if !bytes.Equal(parity[i], wantParity[i]) {
					t.Fatalf("RS(%d,%d) size=%d: fused parity %d differs from reference",
						sh.k, sh.m, size, i)
				}
			}
			for i := range wantSums {
				if sums[i] != wantSums[i] {
					t.Fatalf("RS(%d,%d) size=%d: sum %d = %08x, want %08x",
						sh.k, sh.m, size, i, sums[i], wantSums[i])
				}
			}
		}
	}
}

func TestEncodeSumIntoValidatesArgs(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, parity := makeStripe(rand.New(rand.NewSource(52)), 4, 2, 64)
	if err := c.EncodeSumInto(make([]uint32, 5), data, parity); err == nil {
		t.Fatal("want error for wrong sums length")
	}
	if err := c.EncodeSumInto(make([]uint32, 6), data[:3], parity); err == nil {
		t.Fatal("want error for wrong data count")
	}
}

// TestReconstructSum checks the repair-path variant: rebuilt blocks get
// their fused CRC, untouched entries keep the caller's sentinel.
func TestReconstructSum(t *testing.T) {
	const k, m, size = 6, 3, 2*tileSize + 77
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(53))
	data, parity := makeStripe(r, k, m, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	table := crc32.MakeTable(crc32.Castagnoli)

	blocks := make([][]byte, k+m)
	copy(blocks, data)
	copy(blocks[k:], parity)
	blocks[1], blocks[4], blocks[k+2] = nil, nil, nil
	const sentinel = 0xdeadbeef
	sums := make([]uint32, k+m)
	for i := range sums {
		sums[i] = sentinel
	}
	if err := c.ReconstructSum(blocks, sums); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 4, k + 2} {
		if want := crc32.Checksum(blocks[i], table); sums[i] != want {
			t.Fatalf("rebuilt block %d: sum %08x, want %08x", i, sums[i], want)
		}
	}
	for _, i := range []int{0, 2, 3, 5, k, k + 1} {
		if sums[i] != sentinel {
			t.Fatalf("present block %d: sum overwritten to %08x", i, sums[i])
		}
	}
	if !bytes.Equal(blocks[1], data[1]) || !bytes.Equal(blocks[4], data[4]) ||
		!bytes.Equal(blocks[k+2], parity[2]) {
		t.Fatal("reconstruction produced wrong content")
	}

	if err := c.ReconstructSum(blocks, make([]uint32, k)); err == nil {
		t.Fatal("want error for wrong sums length")
	}
}

// TestEncodeSumAllocs extends the steady-state allocation budget to the
// fused paths: EncodeSumInto and cached-pattern ReconstructSum with
// caller-supplied buffers must allocate nothing.
func TestEncodeSumAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const k, m, size = 10, 4, 64 << 10
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(54))
	data, parity := makeStripe(r, k, m, size)
	sums := make([]uint32, k+m)
	if err := c.EncodeSumInto(sums, data, parity); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := c.EncodeSumInto(sums, data, parity); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EncodeSumInto allocates %.1f per op, want 0", n)
	}

	blocks := make([][]byte, k+m)
	spare0 := make([]byte, 0, size)
	spare1 := make([]byte, 0, size)
	reset := func() {
		copy(blocks, data)
		copy(blocks[k:], parity)
		blocks[1] = spare0
		blocks[k+2] = spare1
	}
	reset()
	if err := c.ReconstructSum(blocks, sums); err != nil { // warm the decode cache
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		reset()
		if err := c.ReconstructSum(blocks, sums); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ReconstructSum with supplied buffers allocates %.1f per op, want 0", n)
	}
}

// FuzzFusedEncodeSum is the differential fuzz target pinning the fused
// single-pass encode+CRC (and whatever schedule the plan compiler chose,
// CSE or plain) byte-for-byte against the two-pass scalar reference.
func FuzzFusedEncodeSum(f *testing.F) {
	f.Add(uint8(10), uint8(4), uint16(200), int64(1))
	f.Add(uint8(1), uint8(1), uint16(1), int64(2))
	f.Add(uint8(8), uint8(8), uint16(4096), int64(3))
	f.Add(uint8(5), uint8(3), uint16(4105), int64(4))
	f.Fuzz(func(t *testing.T, k8, m8 uint8, size16 uint16, seed int64) {
		k := int(k8%24) + 1
		m := int(m8%8) + 1
		size := int(size16%(2*tileSize+129)) + 1
		c, err := New(k, m)
		if err != nil {
			t.Skip()
		}
		r := rand.New(rand.NewSource(seed))
		data, parity := makeStripe(r, k, m, size)
		sums, err := c.EncodeSum(data, parity)
		if err != nil {
			t.Fatal(err)
		}
		wantParity, wantSums := twoPassSums(t, c, data, size)
		for i := range wantParity {
			if !bytes.Equal(parity[i], wantParity[i]) {
				t.Fatalf("RS(%d,%d) size=%d: fused parity %d differs from two-pass reference",
					k, m, size, i)
			}
		}
		for i := range wantSums {
			if sums[i] != wantSums[i] {
				t.Fatalf("RS(%d,%d) size=%d: sum %d = %08x, want %08x",
					k, m, size, i, sums[i], wantSums[i])
			}
		}
	})
}
