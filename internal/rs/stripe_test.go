package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 100, 1000, 4096, 100001} {
		for _, k := range []int{1, 2, 8, 13} {
			data := make([]byte, n)
			r.Read(data)
			shards, err := Split(data, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(shards) != k {
				t.Fatalf("n=%d k=%d: %d shards", n, k, len(shards))
			}
			for i := 1; i < k; i++ {
				if len(shards[i]) != len(shards[0]) {
					t.Fatalf("n=%d k=%d: ragged shards", n, k)
				}
			}
			back, err := Join(shards, n)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("n=%d k=%d: roundtrip mismatch", n, k)
			}
		}
	}
}

// TestSplitAliasingContract pins the documented aliasing behaviour of
// Split: shards that fit entirely inside the input are views of it,
// and only padded/past-the-end shards are copies.
func TestSplitAliasingContract(t *testing.T) {
	// Full-length input: every shard aliases, zero copies.
	full := []byte("abcdefgh") // 8 bytes, k=4 -> shardSize 2, no padding
	shards, err := Split(full, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shards {
		s[0] = 'X'
		if full[i*2] != 'X' {
			t.Fatalf("shard %d does not alias the input", i)
		}
	}

	// Ragged input: head shards alias, the padded tail is a copy.
	ragged := []byte("abcdefghij") // 10 bytes, k=4 -> shardSize 3
	shards, err = Split(ragged, 4)
	if err != nil {
		t.Fatal(err)
	}
	shards[0][0] = 'Y'
	if ragged[0] != 'Y' {
		t.Fatal("head shard must alias the input")
	}
	shards[3][0] = 'Z' // tail shard covers ragged[9:10] plus padding
	if ragged[9] == 'Z' {
		t.Fatal("padded tail shard must be a copy")
	}
}

func TestSplitCopyNeverAliases(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 8, 10, 4096, 100001} {
		for _, k := range []int{1, 3, 8} {
			data := make([]byte, n)
			r.Read(data)
			orig := append([]byte(nil), data...)
			shards, err := SplitCopy(data, k)
			if err != nil {
				t.Fatal(err)
			}
			// Mutating every shard must leave the input untouched.
			for _, s := range shards {
				for i := range s {
					s[i] ^= 0xff
				}
			}
			if !bytes.Equal(data, orig) {
				t.Fatalf("n=%d k=%d: SplitCopy shard aliased the input", n, k)
			}
			// And the (un-mutated) shards must Join back losslessly.
			for _, s := range shards {
				for i := range s {
					s[i] ^= 0xff
				}
			}
			back, err := Join(shards, n)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, orig) {
				t.Fatalf("n=%d k=%d: SplitCopy roundtrip mismatch", n, k)
			}
		}
	}
}

func TestSplitValidation(t *testing.T) {
	if _, err := Split([]byte("x"), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestJoinValidation(t *testing.T) {
	if _, err := Join(nil, 0); err == nil {
		t.Fatal("no shards accepted")
	}
	if _, err := Join([][]byte{{1}, nil}, 1); err == nil {
		t.Fatal("nil shard accepted")
	}
	if _, err := Join([][]byte{{1}, {2, 3}}, 2); err == nil {
		t.Fatal("ragged shards accepted")
	}
	if _, err := Join([][]byte{{1, 2}}, 5); err == nil {
		t.Fatal("oversize accepted")
	}
}

// Property: split -> encode -> lose m shards -> reconstruct -> join
// recovers the payload for random parameters.
func TestQuickFullPipeline(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(10)
		m := 1 + r.Intn(4)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		payload := make([]byte, r.Intn(5000))
		r.Read(payload)
		data, err := Split(payload, k)
		if err != nil {
			return false
		}
		parity, err := c.EncodeAppend(data)
		if err != nil {
			return false
		}
		stripe := append(append([][]byte{}, data...), parity...)
		for _, i := range r.Perm(k + m)[:m] {
			stripe[i] = nil
		}
		if err := c.Reconstruct(stripe); err != nil {
			return false
		}
		back, err := Join(stripe[:k], len(payload))
		if err != nil {
			return false
		}
		return bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
