package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 100, 1000, 4096, 100001} {
		for _, k := range []int{1, 2, 8, 13} {
			data := make([]byte, n)
			r.Read(data)
			shards, err := Split(data, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(shards) != k {
				t.Fatalf("n=%d k=%d: %d shards", n, k, len(shards))
			}
			for i := 1; i < k; i++ {
				if len(shards[i]) != len(shards[0]) {
					t.Fatalf("n=%d k=%d: ragged shards", n, k)
				}
			}
			back, err := Join(shards, n)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("n=%d k=%d: roundtrip mismatch", n, k)
			}
		}
	}
}

func TestSplitValidation(t *testing.T) {
	if _, err := Split([]byte("x"), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestJoinValidation(t *testing.T) {
	if _, err := Join(nil, 0); err == nil {
		t.Fatal("no shards accepted")
	}
	if _, err := Join([][]byte{{1}, nil}, 1); err == nil {
		t.Fatal("nil shard accepted")
	}
	if _, err := Join([][]byte{{1}, {2, 3}}, 2); err == nil {
		t.Fatal("ragged shards accepted")
	}
	if _, err := Join([][]byte{{1, 2}}, 5); err == nil {
		t.Fatal("oversize accepted")
	}
}

// Property: split -> encode -> lose m shards -> reconstruct -> join
// recovers the payload for random parameters.
func TestQuickFullPipeline(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(10)
		m := 1 + r.Intn(4)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		payload := make([]byte, r.Intn(5000))
		r.Read(payload)
		data, err := Split(payload, k)
		if err != nil {
			return false
		}
		parity, err := c.EncodeAppend(data)
		if err != nil {
			return false
		}
		stripe := append(append([][]byte{}, data...), parity...)
		for _, i := range r.Perm(k + m)[:m] {
			stripe[i] = nil
		}
		if err := c.Reconstruct(stripe); err != nil {
			return false
		}
		back, err := Join(stripe[:k], len(payload))
		if err != nil {
			return false
		}
		return bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
