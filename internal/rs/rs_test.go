package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlocks(r *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		r.Read(out[i])
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(4, -1); err == nil {
		t.Fatal("m<0 accepted")
	}
	if _, err := New(200, 100); err == nil {
		t.Fatal("k+m>256 accepted")
	}
	if _, err := New(252, 4); err != nil {
		t.Fatal("k+m=256 rejected")
	}
	if _, err := NewWithMatrix(4, 2, MatrixKind(99)); err == nil {
		t.Fatal("bad matrix kind accepted")
	}
}

func TestEncodeVerify(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, kind := range []MatrixKind{CauchyMatrix, VandermondeMatrix} {
		for _, p := range []struct{ k, m int }{{2, 1}, {4, 2}, {8, 4}, {24, 4}, {48, 4}} {
			c, err := NewWithMatrix(p.k, p.m, kind)
			if err != nil {
				t.Fatal(err)
			}
			data := randBlocks(r, p.k, 257)
			parity, err := c.EncodeAppend(data)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := c.Verify(data, parity)
			if err != nil || !ok {
				t.Fatalf("verify failed for k=%d m=%d kind=%d: %v", p.k, p.m, kind, err)
			}
			// Corrupt one byte: must fail verification.
			parity[0][13] ^= 1
			ok, err = c.Verify(data, parity)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatal("verify passed on corrupted parity")
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	c, _ := New(4, 2)
	r := rand.New(rand.NewSource(2))
	data := randBlocks(r, 4, 64)
	if err := c.Encode(data[:3], randBlocks(r, 2, 64)); err == nil {
		t.Fatal("wrong data count accepted")
	}
	if err := c.Encode(data, randBlocks(r, 1, 64)); err == nil {
		t.Fatal("wrong parity count accepted")
	}
	bad := randBlocks(r, 4, 64)
	bad[2] = bad[2][:32]
	if err := c.Encode(bad, randBlocks(r, 2, 64)); err == nil {
		t.Fatal("ragged blocks accepted")
	}
	if err := c.Encode(data, randBlocks(r, 2, 32)); err == nil {
		t.Fatal("parity size mismatch accepted")
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(r, 6, 128)
	parity, _ := c.EncodeAppend(data)
	full := append(append([][]byte{}, data...), parity...)

	// Exhaustively erase every subset of size 1..3.
	n := len(full)
	var subsets [][]int
	for a := 0; a < n; a++ {
		subsets = append(subsets, []int{a})
		for b := a + 1; b < n; b++ {
			subsets = append(subsets, []int{a, b})
			for d := b + 1; d < n; d++ {
				subsets = append(subsets, []int{a, b, d})
			}
		}
	}
	for _, erased := range subsets {
		work := make([][]byte, n)
		copy(work, full)
		for _, e := range erased {
			work[e] = nil
		}
		if err := c.Reconstruct(work); err != nil {
			t.Fatalf("reconstruct failed for erasures %v: %v", erased, err)
		}
		for i := range full {
			if !bytes.Equal(work[i], full[i]) {
				t.Fatalf("block %d wrong after reconstructing %v", i, erased)
			}
		}
	}
}

func TestReconstructTooMany(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c, _ := New(4, 2)
	data := randBlocks(r, 4, 64)
	parity, _ := c.EncodeAppend(data)
	full := append(append([][]byte{}, data...), parity...)
	full[0], full[1], full[2] = nil, nil, nil
	if err := c.Reconstruct(full); err == nil {
		t.Fatal("3 erasures with m=2 accepted")
	}
}

func TestReconstructNoErasures(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c, _ := New(3, 2)
	data := randBlocks(r, 3, 32)
	parity, _ := c.EncodeAppend(data)
	full := append(append([][]byte{}, data...), parity...)
	if err := c.Reconstruct(full); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructDataOnly(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	c, _ := New(6, 3)
	data := randBlocks(r, 6, 96)
	parity, _ := c.EncodeAppend(data)
	full := append(append([][]byte{}, data...), parity...)

	work := make([][]byte, len(full))
	copy(work, full)
	work[1], work[4], work[7] = nil, nil, nil // 2 data + 1 parity
	if err := c.ReconstructData(work); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if !bytes.Equal(work[i], full[i]) {
			t.Fatalf("data block %d wrong", i)
		}
	}
	if work[7] != nil {
		t.Fatal("ReconstructData must not rebuild parity")
	}

	// No missing data: no work, parity stays nil.
	work2 := make([][]byte, len(full))
	copy(work2, full)
	work2[8] = nil
	if err := c.ReconstructData(work2); err != nil {
		t.Fatal(err)
	}
	if work2[8] != nil {
		t.Fatal("parity-only erasure should be left alone")
	}

	// Beyond m: error.
	work3 := make([][]byte, len(full))
	copy(work3, full)
	work3[0], work3[1], work3[2], work3[3] = nil, nil, nil, nil
	if err := c.ReconstructData(work3); err == nil {
		t.Fatal("4 erasures with m=3 accepted")
	}
}

func TestDecodeMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c, _ := New(5, 3)
	data := randBlocks(r, 5, 96)
	parity, _ := c.EncodeAppend(data)
	full := append(append([][]byte{}, data...), parity...)
	// Survive on blocks {1,3,5,6,7}: two data lost.
	surv := []int{1, 3, 5, 6, 7}
	dm, err := c.DecodeMatrix(surv)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([][]byte, 5)
	for i, s := range surv {
		srcs[i] = full[s]
	}
	for d := 0; d < 5; d++ {
		out := make([]byte, 96)
		for i := range out {
			var acc byte
			for j := 0; j < 5; j++ {
				acc ^= mulByte(dm.At(d, j), srcs[j][i])
			}
			out[i] = acc
		}
		if !bytes.Equal(out, data[d]) {
			t.Fatalf("decode matrix wrong for data block %d", d)
		}
	}
	if _, err := c.DecodeMatrix([]int{0, 1}); err == nil {
		t.Fatal("short survivor list accepted")
	}
}

func mulByte(a, b byte) byte {
	// tiny local reference using the package's own GF via Encode of a
	// 1-byte block would be circular; reimplement carry-less multiply.
	var p uint16
	ua, ub := uint16(a), uint16(b)
	for i := 0; i < 8; i++ {
		if ub&1 != 0 {
			p ^= ua
		}
		ub >>= 1
		ua <<= 1
		if ua&0x100 != 0 {
			ua ^= 0x11d
		}
	}
	return byte(p)
}

func TestUpdate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c, _ := New(6, 3)
	data := randBlocks(r, 6, 200)
	parity, _ := c.EncodeAppend(data)

	// Overwrite block 2 and incrementally update parity.
	newBlock := make([]byte, 200)
	r.Read(newBlock)
	if err := c.Update(2, data[2], newBlock, parity); err != nil {
		t.Fatal(err)
	}
	data[2] = newBlock
	ok, err := c.Verify(data, parity)
	if err != nil || !ok {
		t.Fatalf("parity inconsistent after incremental update: %v", err)
	}

	if err := c.Update(9, data[0], data[0], parity); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := c.Update(0, data[0][:10], data[0], parity); err == nil {
		t.Fatal("mismatched old/new sizes accepted")
	}
}

func TestM0Rejected(t *testing.T) {
	if _, err := New(4, 0); err == nil {
		t.Fatal("m=0 accepted; parity-less codes are not erasure codes")
	}
}

// Property: any k random survivors reconstruct random data exactly.
func TestQuickReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(10)
		m := 1 + r.Intn(4)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		size := 1 + r.Intn(300)
		data := randBlocks(r, k, size)
		parity, err := c.EncodeAppend(data)
		if err != nil {
			return false
		}
		full := append(append([][]byte{}, data...), parity...)
		work := make([][]byte, len(full))
		copy(work, full)
		for _, e := range r.Perm(k + m)[:m] {
			work[e] = nil
		}
		if err := c.Reconstruct(work); err != nil {
			return false
		}
		for i := range full {
			if !bytes.Equal(work[i], full[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is linear — parity of (a XOR b) equals parity(a) XOR parity(b).
func TestQuickEncodeLinear(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := New(4, 3)
		if err != nil {
			return false
		}
		size := 64
		a := randBlocks(r, 4, size)
		b := randBlocks(r, 4, size)
		sum := make([][]byte, 4)
		for i := range sum {
			sum[i] = make([]byte, size)
			for j := 0; j < size; j++ {
				sum[i][j] = a[i][j] ^ b[i][j]
			}
		}
		pa, _ := c.EncodeAppend(a)
		pb, _ := c.EncodeAppend(b)
		ps, _ := c.EncodeAppend(sum)
		for i := 0; i < 3; i++ {
			for j := 0; j < size; j++ {
				if ps[i][j] != pa[i][j]^pb[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeRS_12_8_1K(b *testing.B) {
	benchEncode(b, 8, 4, 1024)
}

func BenchmarkEncodeRS_28_24_1K(b *testing.B) {
	benchEncode(b, 24, 4, 1024)
}

func BenchmarkEncodeRS_52_48_1K(b *testing.B) {
	benchEncode(b, 48, 4, 1024)
}

func benchEncode(b *testing.B, k, m, size int) {
	c, err := New(k, m)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	data := randBlocks(r, k, size)
	parity := randBlocks(r, m, size)
	b.SetBytes(int64(k * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}
