package rs

import (
	"bytes"
	"sync"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
)

// tileSize is how many bytes of each source block one tile pass covers.
// The working set of a 4-row group tile is the interleaved accumulator
// (4*tileSize = 16 KiB) plus the current source tile (4 KiB) plus the
// one packed table in flight (1 KiB) — comfortably L1-resident, which is
// what makes the read-modify-write accumulation cheap. 2 KiB and 8 KiB
// tiles measured within noise of 4 KiB on the bench machine; 4 KiB
// leaves the most L1 headroom as k grows.
const tileSize = 4096

// accPool serves the interleaved accumulator and de-interleave scratch
// tiles. Every buffer is 4*tileSize so one pool serves quad and pair
// groups alike.
var accPool = sync.Pool{
	New: func() any {
		b := make([]byte, 4*tileSize)
		return &b
	},
}

// rowGroup is a run of 1, 2 or 4 consecutive plan rows advanced together
// by one fused source sweep. Quad and pair groups carry one packed table
// per source column; single rows keep their raw coefficients.
type rowGroup struct {
	lo, n  int
	quad   []gf.QuadTables
	pair   []gf.PairTables
	coeffs []byte
}

// encodePlan is a coefficient matrix compiled into fused row groups. A
// plan is immutable after buildPlan and safe for concurrent use; the
// encode plan of a Code is built once at New, and decode plans are built
// once per erasure pattern and cached.
type encodePlan struct {
	rows, cols int
	groups     []rowGroup
}

// buildPlan compiles an r x c coefficient matrix into fused row groups:
// greedily 4-row groups, then a 2-row group, then a single row (m=3
// becomes 2+1, m=5 becomes 4+1, m=7 becomes 4+2+1).
func buildPlan(mat *ecmatrix.Matrix) *encodePlan {
	p := &encodePlan{rows: mat.Rows, cols: mat.Cols}
	for lo := 0; lo < mat.Rows; {
		switch rem := mat.Rows - lo; {
		case rem >= 4:
			g := rowGroup{lo: lo, n: 4, quad: make([]gf.QuadTables, mat.Cols)}
			for j := 0; j < mat.Cols; j++ {
				g.quad[j] = gf.MakeQuadTables(
					mat.At(lo, j), mat.At(lo+1, j), mat.At(lo+2, j), mat.At(lo+3, j))
			}
			p.groups = append(p.groups, g)
			lo += 4
		case rem >= 2:
			g := rowGroup{lo: lo, n: 2, pair: make([]gf.PairTables, mat.Cols)}
			for j := 0; j < mat.Cols; j++ {
				g.pair[j] = gf.MakePairTables(mat.At(lo, j), mat.At(lo+1, j))
			}
			p.groups = append(p.groups, g)
			lo += 2
		default:
			g := rowGroup{lo: lo, n: 1, coeffs: append([]byte(nil), mat.Row(lo)...)}
			p.groups = append(p.groups, g)
			lo++
		}
	}
	return p
}

// apply computes dst[i] = sum_j mat[i][j]*srcs[j] for every plan row,
// overwriting dst. It walks the blocks in L1-sized tiles: within a tile
// every row group sweeps all sources into a pooled interleaved
// accumulator and transposes the result out once, so each source byte is
// loaded once per group (not once per row) and the accumulator never
// leaves L1. dst must hold p.rows blocks and srcs p.cols blocks, all of
// length size; dst blocks must not alias srcs.
func (p *encodePlan) apply(dst, srcs [][]byte, size int) {
	accp := accPool.Get().(*[]byte)
	acc := *accp
	for off := 0; off < size; off += tileSize {
		t := min(tileSize, size-off)
		for gi := range p.groups {
			g := &p.groups[gi]
			switch g.n {
			case 4:
				a := acc[:4*t]
				clear(a)
				for j, src := range srcs {
					g.quad[j].MulAddQuad(a, src[off:off+t])
				}
				gf.Deinterleave4(a,
					dst[g.lo][off:off+t], dst[g.lo+1][off:off+t],
					dst[g.lo+2][off:off+t], dst[g.lo+3][off:off+t])
			case 2:
				a := acc[:2*t]
				clear(a)
				for j, src := range srcs {
					g.pair[j].MulAddPair(a, src[off:off+t])
				}
				gf.Deinterleave2(a, dst[g.lo][off:off+t], dst[g.lo+1][off:off+t])
			default:
				d := dst[g.lo][off : off+t]
				gf.MulSlice(g.coeffs[0], d, srcs[0][off:off+t])
				for j := 1; j < len(srcs); j++ {
					gf.MulSliceAdd(g.coeffs[j], d, srcs[j][off:off+t])
				}
			}
		}
	}
	accPool.Put(accp)
}

// verify recomputes the plan's outputs tile by tile into pooled scratch
// and compares them word-at-a-time against expect, returning false at
// the first tile row that differs — a mismatch near the front of the
// blocks is detected without touching the rest.
func (p *encodePlan) verify(expect, srcs [][]byte, size int) bool {
	accp := accPool.Get().(*[]byte)
	outp := accPool.Get().(*[]byte)
	defer func() {
		accPool.Put(accp)
		accPool.Put(outp)
	}()
	acc, out := *accp, *outp
	for off := 0; off < size; off += tileSize {
		t := min(tileSize, size-off)
		for gi := range p.groups {
			g := &p.groups[gi]
			switch g.n {
			case 4:
				a := acc[:4*t]
				clear(a)
				for j, src := range srcs {
					g.quad[j].MulAddQuad(a, src[off:off+t])
				}
				gf.Deinterleave4(a, out[:t], out[t:2*t], out[2*t:3*t], out[3*t:4*t])
				for r := 0; r < 4; r++ {
					if !bytes.Equal(out[r*t:(r+1)*t], expect[g.lo+r][off:off+t]) {
						return false
					}
				}
			case 2:
				a := acc[:2*t]
				clear(a)
				for j, src := range srcs {
					g.pair[j].MulAddPair(a, src[off:off+t])
				}
				gf.Deinterleave2(a, out[:t], out[t:2*t])
				if !bytes.Equal(out[:t], expect[g.lo][off:off+t]) ||
					!bytes.Equal(out[t:2*t], expect[g.lo+1][off:off+t]) {
					return false
				}
			default:
				d := out[:t]
				gf.MulSlice(g.coeffs[0], d, srcs[0][off:off+t])
				for j := 1; j < len(srcs); j++ {
					gf.MulSliceAdd(g.coeffs[j], d, srcs[j][off:off+t])
				}
				if !bytes.Equal(d, expect[g.lo][off:off+t]) {
					return false
				}
			}
		}
	}
	return true
}
