package rs

import (
	"bytes"
	"sync"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
)

// tileSize is how many bytes of each source block one tile pass covers.
// The working set of a 4-row group tile is the interleaved accumulator
// (4*tileSize = 16 KiB) plus the current source tile (4 KiB) plus the
// one packed table in flight (1 KiB) — comfortably L1-resident, which is
// what makes the read-modify-write accumulation cheap. 2 KiB and 8 KiB
// tiles measured within noise of 4 KiB on the bench machine; 4 KiB
// leaves the most L1 headroom as k grows.
const tileSize = 4096

// accPool serves the interleaved accumulator and de-interleave scratch
// tiles. Every buffer is 4*tileSize so one pool serves quad and pair
// groups alike.
var accPool = sync.Pool{
	New: func() any {
		b := make([]byte, 4*tileSize)
		return &b
	},
}

// rowGroup is a run of 1, 2 or 4 consecutive plan rows advanced together
// by one fused source sweep. cols lists the active column indices — the
// columns with a nonzero coefficient in at least one group row, counting
// CSE temporaries as columns beyond the matrix width — and the packed
// tables (quad/pair) or raw coefficients (single rows) run parallel to
// it, so all-zero columns cost nothing.
type rowGroup struct {
	lo, n  int
	cols   []int
	quad   []gf.QuadTables
	pair   []gf.PairTables
	coeffs []byte
}

// encodePlan is a coefficient matrix compiled into fused row groups plus
// an optional CSE prologue of pooled temporary tiles. A plan is
// immutable after buildPlan and safe for concurrent use; the encode plan
// of a Code is built once at New, and decode plans are built once per
// erasure pattern and cached.
type encodePlan struct {
	rows, cols int
	temps      []tempDef  // CSE temporaries, evaluation order; empty for plain plans
	groups     []rowGroup // over cols + len(temps) logical columns
	tmp        *sync.Pool // temp-tile scratch (len(temps)*tileSize); nil without temps

	// cost prices the chosen schedule and plainCost the quad/pair
	// baseline, in scheduleCost units; cost < plainCost iff the CSE
	// schedule was adopted. Retained for tests and introspection.
	cost, plainCost int
}

// buildPlan compiles an r x c coefficient matrix into fused row groups:
// greedily 4-row groups, then a 2-row group, then a single row (m=3
// becomes 2+1, m=5 becomes 4+1, m=7 becomes 4+2+1). It then runs the
// greedy CSE pair extraction (cse.go) over the matrix and recompiles;
// the extracted schedule is kept only when it prices strictly cheaper
// under scheduleCost, otherwise the plain grouping stands.
func buildPlan(mat *ecmatrix.Matrix) *encodePlan {
	rows := make([][]byte, mat.Rows)
	for i := range rows {
		rows[i] = append([]byte(nil), mat.Row(i)...)
	}
	p := &encodePlan{rows: mat.Rows, cols: mat.Cols}
	p.groups = compileGroups(rows)
	p.plainCost = scheduleCost(p.groups, nil)
	p.cost = p.plainCost

	cseRows, temps := cseExtract(rows)
	if len(temps) > 0 {
		cseGroups := compileGroups(cseRows)
		if cseCost := scheduleCost(cseGroups, temps); cseCost < p.plainCost {
			p.temps, p.groups, p.cost = temps, cseGroups, cseCost
			n := len(temps)
			p.tmp = &sync.Pool{New: func() any {
				b := make([]byte, n*tileSize)
				return &b
			}}
		}
	}
	return p
}

// compileGroups builds the 4/2/1 row grouping over a row-major
// coefficient matrix, recording only the active columns of each group.
func compileGroups(rows [][]byte) []rowGroup {
	var groups []rowGroup
	width := len(rows[0])
	for lo := 0; lo < len(rows); {
		n := 1
		switch rem := len(rows) - lo; {
		case rem >= 4:
			n = 4
		case rem >= 2:
			n = 2
		}
		g := rowGroup{lo: lo, n: n}
		for c := 0; c < width; c++ {
			active := false
			for r := 0; r < n; r++ {
				if rows[lo+r][c] != 0 {
					active = true
					break
				}
			}
			if !active {
				continue
			}
			g.cols = append(g.cols, c)
			switch n {
			case 4:
				g.quad = append(g.quad, gf.MakeQuadTables(
					rows[lo][c], rows[lo+1][c], rows[lo+2][c], rows[lo+3][c]))
			case 2:
				g.pair = append(g.pair, gf.MakePairTables(rows[lo][c], rows[lo+1][c]))
			default:
				g.coeffs = append(g.coeffs, rows[lo][c])
			}
		}
		groups = append(groups, g)
		lo += n
	}
	return groups
}

// tile resolves a logical column to its current tile slice: source
// columns come from srcs, temporary columns from the tmp scratch laid
// out at tileSize stride.
func (p *encodePlan) tile(srcs [][]byte, tmp []byte, col, off, t int) []byte {
	if col < p.cols {
		return srcs[col][off : off+t]
	}
	i := col - p.cols
	return tmp[i*tileSize : i*tileSize+t]
}

// apply computes dst[i] = sum_j mat[i][j]*srcs[j] for every plan row,
// overwriting dst. dst must hold p.rows blocks and srcs p.cols blocks,
// all of length size; dst blocks must not alias srcs.
func (p *encodePlan) apply(dst, srcs [][]byte, size int) {
	p.sweep(dst, srcs, size, nil, nil)
}

// sweep is the fused tile loop behind apply and the *Sum paths. It walks
// the blocks in L1-sized tiles: within a tile the CSE temporaries (if
// any) are materialized first, then every row group sweeps its active
// columns into a pooled interleaved accumulator and transposes the
// result out once, so each source byte is loaded once per group (not
// once per row) and the accumulator never leaves L1.
//
// When srcSums is non-nil (length p.cols) the CRC-32C of each source
// block is folded into it in a per-tile epilogue, right after the row
// groups consumed those tiles — the bytes are still cache-resident, so
// the checksum re-read is served from L1/L2 instead of the DRAM (or
// persistent-memory) pass a separate whole-block checksum would cost.
// Likewise dstSums (length p.rows) accumulates each output row's CRC
// immediately after its tile is produced. Both start from the caller's
// values (zero for a fresh checksum), so a full sweep leaves exactly
// gf.CRC32C of each block — the single-pass replacement for a separate
// trailer pass over the stripe.
func (p *encodePlan) sweep(dst, srcs [][]byte, size int, srcSums, dstSums []uint32) {
	accp := accPool.Get().(*[]byte)
	acc := *accp
	var tmpp *[]byte
	var tmp []byte
	if p.tmp != nil {
		tmpp = p.tmp.Get().(*[]byte)
		tmp = *tmpp
	}
	for off := 0; off < size; off += tileSize {
		t := min(tileSize, size-off)
		for ti := range p.temps {
			td := &p.temps[ti]
			gf.MulSliceXor(td.cb, tmp[ti*tileSize:ti*tileSize+t],
				p.tile(srcs, tmp, td.a, off, t), p.tile(srcs, tmp, td.b, off, t))
		}
		for gi := range p.groups {
			g := &p.groups[gi]
			switch g.n {
			case 4:
				a := acc[:4*t]
				clear(a)
				for ci, col := range g.cols {
					g.quad[ci].MulAddQuad(a, p.tile(srcs, tmp, col, off, t))
				}
				gf.Deinterleave4(a,
					dst[g.lo][off:off+t], dst[g.lo+1][off:off+t],
					dst[g.lo+2][off:off+t], dst[g.lo+3][off:off+t])
			case 2:
				a := acc[:2*t]
				clear(a)
				for ci, col := range g.cols {
					g.pair[ci].MulAddPair(a, p.tile(srcs, tmp, col, off, t))
				}
				gf.Deinterleave2(a, dst[g.lo][off:off+t], dst[g.lo+1][off:off+t])
			default:
				d := dst[g.lo][off : off+t]
				if len(g.cols) == 0 {
					clear(d)
					break
				}
				gf.MulSlice(g.coeffs[0], d, p.tile(srcs, tmp, g.cols[0], off, t))
				for ci := 1; ci < len(g.cols); ci++ {
					gf.MulSliceAdd(g.coeffs[ci], d, p.tile(srcs, tmp, g.cols[ci], off, t))
				}
			}
			if dstSums != nil {
				for r := 0; r < g.n; r++ {
					dstSums[g.lo+r] = gf.CRC32CUpdate(dstSums[g.lo+r], dst[g.lo+r][off:off+t])
				}
			}
		}
		if srcSums != nil {
			for j, src := range srcs {
				srcSums[j] = gf.CRC32CUpdate(srcSums[j], src[off:off+t])
			}
		}
	}
	if tmpp != nil {
		p.tmp.Put(tmpp)
	}
	accPool.Put(accp)
}

// verify recomputes the plan's outputs tile by tile into pooled scratch
// and compares them word-at-a-time against expect, returning false at
// the first tile row that differs — a mismatch near the front of the
// blocks is detected without touching the rest.
func (p *encodePlan) verify(expect, srcs [][]byte, size int) bool {
	accp := accPool.Get().(*[]byte)
	outp := accPool.Get().(*[]byte)
	var tmpp *[]byte
	var tmp []byte
	if p.tmp != nil {
		tmpp = p.tmp.Get().(*[]byte)
		tmp = *tmpp
	}
	defer func() {
		if tmpp != nil {
			p.tmp.Put(tmpp)
		}
		accPool.Put(accp)
		accPool.Put(outp)
	}()
	acc, out := *accp, *outp
	for off := 0; off < size; off += tileSize {
		t := min(tileSize, size-off)
		for ti := range p.temps {
			td := &p.temps[ti]
			gf.MulSliceXor(td.cb, tmp[ti*tileSize:ti*tileSize+t],
				p.tile(srcs, tmp, td.a, off, t), p.tile(srcs, tmp, td.b, off, t))
		}
		for gi := range p.groups {
			g := &p.groups[gi]
			switch g.n {
			case 4:
				a := acc[:4*t]
				clear(a)
				for ci, col := range g.cols {
					g.quad[ci].MulAddQuad(a, p.tile(srcs, tmp, col, off, t))
				}
				gf.Deinterleave4(a, out[:t], out[t:2*t], out[2*t:3*t], out[3*t:4*t])
				for r := 0; r < 4; r++ {
					if !bytes.Equal(out[r*t:(r+1)*t], expect[g.lo+r][off:off+t]) {
						return false
					}
				}
			case 2:
				a := acc[:2*t]
				clear(a)
				for ci, col := range g.cols {
					g.pair[ci].MulAddPair(a, p.tile(srcs, tmp, col, off, t))
				}
				gf.Deinterleave2(a, out[:t], out[t:2*t])
				if !bytes.Equal(out[:t], expect[g.lo][off:off+t]) ||
					!bytes.Equal(out[t:2*t], expect[g.lo+1][off:off+t]) {
					return false
				}
			default:
				d := out[:t]
				if len(g.cols) == 0 {
					clear(d)
				} else {
					gf.MulSlice(g.coeffs[0], d, p.tile(srcs, tmp, g.cols[0], off, t))
					for ci := 1; ci < len(g.cols); ci++ {
						gf.MulSliceAdd(g.coeffs[ci], d, p.tile(srcs, tmp, g.cols[ci], off, t))
					}
				}
				if !bytes.Equal(d, expect[g.lo][off:off+t]) {
					return false
				}
			}
		}
	}
	return true
}
