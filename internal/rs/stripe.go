package rs

import "fmt"

// Split partitions data into exactly k equally sized shards, padding
// the tail shard with zeros. The shard size is ceil(len(data)/k),
// with a minimum of 1 so zero-length inputs still produce valid shards.
//
// Aliasing contract (pinned by TestSplitAliasingContract): every shard
// that fits entirely inside data is a sub-slice of data — writing to
// it writes through to the input, and vice versa. Only shards that
// need zero padding (and shards past the end of data) are freshly
// allocated. This makes Split a zero-copy view for full-length inputs
// (len(data) a multiple of k), which is what the internal/stream
// pipeline relies on when slicing its pooled stripe buffers. Callers
// that mutate shards they don't own must use SplitCopy.
func Split(data []byte, k int) ([][]byte, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rs: Split needs positive k, got %d", k)
	}
	shardSize := (len(data) + k - 1) / k
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, k)
	for i := 0; i < k; i++ {
		lo := i * shardSize
		hi := lo + shardSize
		switch {
		case lo >= len(data):
			shards[i] = make([]byte, shardSize)
		case hi > len(data):
			s := make([]byte, shardSize)
			copy(s, data[lo:])
			shards[i] = s
		default:
			shards[i] = data[lo:hi:hi]
		}
	}
	return shards, nil
}

// SplitCopy is Split without the aliasing: every shard is freshly
// allocated, so mutating the returned shards never touches data and
// mutating data never changes the shards. Use it whenever the shards
// outlive or are modified independently of the input buffer.
func SplitCopy(data []byte, k int) ([][]byte, error) {
	shards, err := Split(data, k)
	if err != nil {
		return nil, err
	}
	for i, s := range shards {
		c := make([]byte, len(s))
		copy(c, s)
		shards[i] = c
	}
	return shards, nil
}

// Join reassembles the original byte stream of length size from k data
// shards produced by Split.
func Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("rs: Join needs at least one shard")
	}
	total := 0
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("rs: Join shard %d is missing", i)
		}
		if len(s) != len(shards[0]) {
			return nil, fmt.Errorf("rs: Join shards are ragged")
		}
		total += len(s)
	}
	if size < 0 || size > total {
		return nil, fmt.Errorf("rs: Join size %d outside [0, %d]", size, total)
	}
	out := make([]byte, 0, size)
	for _, s := range shards {
		if len(out)+len(s) > size {
			out = append(out, s[:size-len(out)]...)
			break
		}
		out = append(out, s...)
	}
	return out, nil
}
