package rs

import "fmt"

// Split partitions data into exactly k equally sized shards, padding
// the tail shard with zeros. The shard size is ceil(len(data)/k),
// with a minimum of 1 so zero-length inputs still produce valid shards.
// The first shards alias data's storage where possible; the tail shard
// is copied when padding is required.
func Split(data []byte, k int) ([][]byte, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rs: Split needs positive k, got %d", k)
	}
	shardSize := (len(data) + k - 1) / k
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, k)
	for i := 0; i < k; i++ {
		lo := i * shardSize
		hi := lo + shardSize
		switch {
		case lo >= len(data):
			shards[i] = make([]byte, shardSize)
		case hi > len(data):
			s := make([]byte, shardSize)
			copy(s, data[lo:])
			shards[i] = s
		default:
			shards[i] = data[lo:hi:hi]
		}
	}
	return shards, nil
}

// Join reassembles the original byte stream of length size from k data
// shards produced by Split.
func Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("rs: Join needs at least one shard")
	}
	total := 0
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("rs: Join shard %d is missing", i)
		}
		if len(s) != len(shards[0]) {
			return nil, fmt.Errorf("rs: Join shards are ragged")
		}
		total += len(s)
	}
	if size < 0 || size > total {
		return nil, fmt.Errorf("rs: Join size %d outside [0, %d]", size, total)
	}
	out := make([]byte, 0, size)
	for _, s := range shards {
		if len(out)+len(s) > size {
			out = append(out, s[:size-len(out)]...)
			break
		}
		out = append(out, s...)
	}
	return out, nil
}
