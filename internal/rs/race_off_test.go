//go:build !race

package rs

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-budget assertions only run
// in non-race builds.
const raceEnabled = false
