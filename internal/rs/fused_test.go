package rs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// fusedShapes covers every row-group decomposition the planner can
// produce: 1, 2, 2+1, 4, 4+1, 4+2, 4+2+1, 4+4.
var fusedShapes = []struct{ k, m int }{
	{1, 1}, {3, 2}, {5, 3}, {10, 4}, {4, 5}, {10, 6}, {6, 7}, {8, 8},
}

// fusedSizes exercises tiles: sub-tile, sub-word, exact tile, tile+tail,
// multi-tile with unaligned tail.
var fusedSizes = []int{1, 7, 200, tileSize, tileSize + 9, 3*tileSize + 65}

func makeStripe(r *rand.Rand, k, m, size int) (data, parity [][]byte) {
	data = make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		r.Read(data[i])
	}
	parity = make([][]byte, m)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	return data, parity
}

// TestEncodeMatchesRef pins the fused tiled encoder byte-for-byte
// against the scalar reference across all group shapes and tile-edge
// sizes.
func TestEncodeMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, sh := range fusedShapes {
		c, err := New(sh.k, sh.m)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range fusedSizes {
			data, parity := makeStripe(r, sh.k, sh.m, size)
			if err := c.Encode(data, parity); err != nil {
				t.Fatal(err)
			}
			want := make([][]byte, sh.m)
			for i := range want {
				want[i] = make([]byte, size)
			}
			if err := c.EncodeRef(data, want); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if !bytes.Equal(parity[i], want[i]) {
					t.Fatalf("RS(%d,%d) size=%d: fused parity %d differs from reference",
						sh.k, sh.m, size, i)
				}
			}
		}
	}
}

// TestReconstructReusesBuffers checks the zero-length-with-capacity
// convention: supplied backing arrays are reused rather than
// reallocated.
func TestReconstructReusesBuffers(t *testing.T) {
	const k, m, size = 6, 3, 1000
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	data, parity := makeStripe(r, k, m, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	blocks := make([][]byte, k+m)
	copy(blocks, data)
	copy(blocks[k:], parity)

	orig := append([]byte(nil), blocks[2]...)
	reuse := make([]byte, 0, size)
	blocks[2] = reuse
	blocks[k+1] = nil // nil stays supported and gets allocated
	if err := c.Reconstruct(blocks); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blocks[2], orig) {
		t.Fatal("reconstructed data block content wrong")
	}
	if &blocks[2][0] != &reuse[:1][0] {
		t.Fatal("caller-supplied capacity was not reused")
	}
	if !bytes.Equal(blocks[k+1], parity[1]) {
		t.Fatal("reconstructed parity block content wrong")
	}
}

// TestReconstructDecodeCache exercises repeated repairs of the same and
// different erasure patterns so cache hits and eviction paths both run.
func TestReconstructDecodeCache(t *testing.T) {
	const k, m, size = 4, 2, 333
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(43))
	data, parity := makeStripe(r, k, m, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for a := 0; a < k+m; a++ {
			for b := a + 1; b < k+m; b++ {
				blocks := make([][]byte, k+m)
				copy(blocks, data)
				copy(blocks[k:], parity)
				blocks[a], blocks[b] = nil, nil
				if err := c.Reconstruct(blocks); err != nil {
					t.Fatalf("erase {%d,%d}: %v", a, b, err)
				}
				for i := 0; i < k; i++ {
					if !bytes.Equal(blocks[i], data[i]) {
						t.Fatalf("erase {%d,%d}: data %d wrong", a, b, i)
					}
				}
				for i := 0; i < m; i++ {
					if !bytes.Equal(blocks[k+i], parity[i]) {
						t.Fatalf("erase {%d,%d}: parity %d wrong", a, b, i)
					}
				}
			}
		}
	}
	c.mu.RLock()
	entries := len(c.decode)
	c.mu.RUnlock()
	if want := (k + m) * (k + m - 1) / 2; entries != want {
		t.Fatalf("decode cache holds %d entries, want %d", entries, want)
	}
}

func TestDecodeCacheEviction(t *testing.T) {
	// k+m = 20 gives 190 two-erasure patterns, well past the cache cap.
	const k, m, size = 16, 4, 64
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(44))
	data, parity := makeStripe(r, k, m, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < k+m; a++ {
		for b := a + 1; b < k+m; b++ {
			blocks := make([][]byte, k+m)
			copy(blocks, data)
			copy(blocks[k:], parity)
			blocks[a], blocks[b] = nil, nil
			if err := c.Reconstruct(blocks); err != nil {
				t.Fatalf("erase {%d,%d}: %v", a, b, err)
			}
			if !bytes.Equal(blocks[a], append(append([][]byte{}, data...), parity...)[a]) {
				t.Fatalf("erase {%d,%d}: block %d wrong", a, b, a)
			}
		}
	}
	c.mu.RLock()
	entries := len(c.decode)
	c.mu.RUnlock()
	if entries > maxDecodeEntries {
		t.Fatalf("decode cache grew to %d entries, cap %d", entries, maxDecodeEntries)
	}
}

// TestDecodeCacheLRU pins the eviction policy: a hot erasure pattern —
// touched between every batch of one-off patterns, the way a failed
// device's pattern recurs on every stripe — must survive arbitrary
// churn, and its compiled entry must never be rebuilt.
func TestDecodeCacheLRU(t *testing.T) {
	const k, m, size = 16, 4, 64
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(49))
	data, parity := makeStripe(r, k, m, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	repair := func(a, b int) {
		blocks := make([][]byte, k+m)
		copy(blocks, data)
		copy(blocks[k:], parity)
		blocks[a] = nil
		if b >= 0 {
			blocks[b] = nil
		}
		if err := c.Reconstruct(blocks); err != nil {
			t.Fatalf("erase {%d,%d}: %v", a, b, err)
		}
	}

	repair(0, -1) // the hot pattern: block 0 missing
	hotKey, _ := erasureKeyOf(append(append([][]byte{nil}, data[1:]...), parity...))
	c.mu.RLock()
	hotEntry := c.decode[hotKey]
	c.mu.RUnlock()
	if hotEntry == nil {
		t.Fatal("hot pattern not cached after first repair")
	}

	// Churn through 190 one-off two-erasure patterns (~3x the cache
	// cap), re-touching the hot pattern after every few, the way real
	// repair traffic interleaves.
	n := 0
	for a := 0; a < k+m; a++ {
		for b := a + 1; b < k+m; b++ {
			repair(a, b)
			if n++; n%5 == 0 {
				repair(0, -1)
			}
		}
	}

	c.mu.RLock()
	got := c.decode[hotKey]
	entries := len(c.decode)
	c.mu.RUnlock()
	if got == nil {
		t.Fatal("hot pattern evicted by one-off churn")
	}
	if got != hotEntry {
		t.Fatal("hot pattern was evicted and rebuilt")
	}
	if entries > maxDecodeEntries {
		t.Fatalf("cache grew to %d entries, cap %d", entries, maxDecodeEntries)
	}
}

// Steady-state allocation budgets: encode, verify, and update must not
// allocate at all; reconstruction with caller-supplied buffers must not
// either once its decode plan is cached.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const k, m, size = 10, 4, 64 << 10
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(45))
	data, parity := makeStripe(r, k, m, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(20, func() {
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Encode allocates %.1f per op, want 0", n)
	}

	if n := testing.AllocsPerRun(20, func() {
		ok, err := c.Verify(data, parity)
		if err != nil || !ok {
			t.Fatal("verify failed")
		}
	}); n != 0 {
		t.Errorf("Verify allocates %.1f per op, want 0", n)
	}

	newData := make([]byte, size)
	r.Read(newData)
	if n := testing.AllocsPerRun(20, func() {
		if err := c.Update(3, data[3], newData, parity); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Update allocates %.1f per op, want 0", n)
	}
	// The repeated updates left parity reflecting newData deltas;
	// recompute it before the reconstruction checks below.
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}

	blocks := make([][]byte, k+m)
	spare0 := make([]byte, 0, size)
	spare1 := make([]byte, 0, size)
	reset := func() {
		copy(blocks, data)
		copy(blocks[k:], parity)
		blocks[1] = spare0
		blocks[k+2] = spare1
	}
	reset()
	if err := c.Reconstruct(blocks); err != nil { // warm the decode cache
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		reset()
		if err := c.Reconstruct(blocks); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Reconstruct with supplied buffers allocates %.1f per op, want 0", n)
	}
	if !bytes.Equal(blocks[1], data[1]) || !bytes.Equal(blocks[k+2], parity[2]) {
		t.Fatal("alloc-free reconstruction produced wrong content")
	}
}

// TestConcurrentCodecUse hammers one Code from many goroutines mixing
// encode, verify, and reconstruction of rotating erasure patterns, so
// the decode-plan cache and scratch pools run under the race detector.
func TestConcurrentCodecUse(t *testing.T) {
	const k, m, size, workers = 6, 3, 4*tileSize + 33, 8
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(48))
	data, parity := makeStripe(r, k, m, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			myParity := make([][]byte, m)
			for i := range myParity {
				myParity[i] = make([]byte, size)
			}
			blocks := make([][]byte, k+m)
			for iter := 0; iter < 30; iter++ {
				if err := c.Encode(data, myParity); err != nil {
					errc <- err
					return
				}
				if ok, err := c.Verify(data, myParity); err != nil || !ok {
					errc <- fmt.Errorf("worker %d iter %d: verify ok=%v err=%v", w, iter, ok, err)
					return
				}
				copy(blocks, data)
				copy(blocks[k:], parity)
				a := (w + iter) % (k + m)
				b := (w + iter + 1 + iter%(k+m-1)) % (k + m)
				blocks[a] = nil
				if a != b {
					blocks[b] = nil
				}
				if err := c.Reconstruct(blocks); err != nil {
					errc <- err
					return
				}
				if a < k && !bytes.Equal(blocks[a], data[a]) {
					errc <- fmt.Errorf("worker %d iter %d: block %d wrong", w, iter, a)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestVerifyDetectsCorruption flips single bytes at tile-relevant
// offsets in every parity row and expects Verify to notice each one.
func TestVerifyDetectsCorruption(t *testing.T) {
	const k, m, size = 5, 3, 2*tileSize + 100
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(46))
	data, parity := makeStripe(r, k, m, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(data, parity)
	if err != nil || !ok {
		t.Fatalf("clean stripe failed verification: ok=%v err=%v", ok, err)
	}
	for i := 0; i < m; i++ {
		for _, off := range []int{0, tileSize - 1, tileSize, size - 1} {
			parity[i][off] ^= 0x40
			ok, err := c.Verify(data, parity)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("corruption in parity %d at %d not detected", i, off)
			}
			parity[i][off] ^= 0x40
		}
	}
}

func BenchmarkEncodeFused(b *testing.B) {
	benchEncodeWith(b, func(c *Code, d, p [][]byte) error { return c.Encode(d, p) })
}

func BenchmarkEncodeScalarRef(b *testing.B) {
	benchEncodeWith(b, func(c *Code, d, p [][]byte) error { return c.EncodeRef(d, p) })
}

func benchEncodeWith(b *testing.B, enc func(*Code, [][]byte, [][]byte) error) {
	const k, m, size = 10, 4, 64 << 10
	c, err := New(k, m)
	if err != nil {
		b.Fatal(err)
	}
	data, parity := makeStripe(rand.New(rand.NewSource(47)), k, m, size)
	b.SetBytes(int64(k * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc(c, data, parity); err != nil {
			b.Fatal(err)
		}
	}
}
