package rs

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
)

// matrixFromRows builds an ecmatrix from explicit byte rows.
func matrixFromRows(rows [][]byte) *ecmatrix.Matrix {
	m := ecmatrix.New(len(rows), len(rows[0]))
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	return m
}

// proportionalMatrix builds rows x cols with row_i = lambda_i * base:
// every column pair shares its coefficient ratio across all rows, the
// best case for CSE extraction — shared subexpressions span every row
// group, so hoisting them shrinks each group's source sweep.
func proportionalMatrix(rows, cols int, seed int64) *ecmatrix.Matrix {
	r := rand.New(rand.NewSource(seed))
	base := make([]byte, cols)
	for j := range base {
		base[j] = byte(r.Intn(255)) + 1
	}
	m := ecmatrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		lambda := byte(i) + 1
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf.Mul(lambda, base[j]))
		}
	}
	return m
}

// refApply computes the plan's defining product with the scalar
// reference kernels, straight from the matrix.
func refApply(mat *ecmatrix.Matrix, srcs [][]byte, size int) [][]byte {
	out := make([][]byte, mat.Rows)
	for i := range out {
		out[i] = make([]byte, size)
		gf.RefDotSlice(mat.Row(i), out[i], srcs)
	}
	return out
}

// TestCSEAdoptedAndCorrect feeds the plan compiler a matrix where every
// pair is a cross-group common subexpression and checks that (a) the
// searched schedule is adopted because it prices strictly cheaper, and
// (b) the CSE sweep — temps, sparse groups, fused CRC — still produces
// exactly the reference product.
func TestCSEAdoptedAndCorrect(t *testing.T) {
	table := crc32.MakeTable(crc32.Castagnoli)
	for _, shape := range []struct{ rows, cols int }{{8, 8}, {6, 10}, {8, 4}} {
		mat := proportionalMatrix(shape.rows, shape.cols, int64(shape.rows*100+shape.cols))
		p := buildPlan(mat)
		if len(p.temps) == 0 {
			t.Fatalf("%dx%d proportional matrix: CSE schedule not adopted", shape.rows, shape.cols)
		}
		if p.cost >= p.plainCost {
			t.Fatalf("%dx%d: adopted schedule cost %d not cheaper than plain %d",
				shape.rows, shape.cols, p.cost, p.plainCost)
		}
		r := rand.New(rand.NewSource(61))
		for _, size := range []int{1, 200, tileSize, 2*tileSize + 13} {
			srcs := make([][]byte, shape.cols)
			for i := range srcs {
				srcs[i] = make([]byte, size)
				r.Read(srcs[i])
			}
			dst := make([][]byte, shape.rows)
			for i := range dst {
				dst[i] = make([]byte, size)
			}
			want := refApply(mat, srcs, size)

			p.apply(dst, srcs, size)
			for i := range want {
				if !bytes.Equal(dst[i], want[i]) {
					t.Fatalf("%dx%d size=%d: CSE apply row %d differs from reference",
						shape.rows, shape.cols, size, i)
				}
			}
			if !p.verify(want, srcs, size) {
				t.Fatalf("%dx%d size=%d: CSE verify rejected correct rows", shape.rows, shape.cols, size)
			}

			srcSums := make([]uint32, shape.cols)
			dstSums := make([]uint32, shape.rows)
			for i := range dst {
				clear(dst[i])
			}
			p.sweep(dst, srcs, size, srcSums, dstSums)
			for i := range srcs {
				if want := crc32.Checksum(srcs[i], table); srcSums[i] != want {
					t.Fatalf("src sum %d = %08x, want %08x", i, srcSums[i], want)
				}
			}
			for i := range dst {
				if want := crc32.Checksum(dst[i], table); dstSums[i] != want {
					t.Fatalf("dst sum %d = %08x, want %08x", i, dstSums[i], want)
				}
			}
		}
	}
}

// TestCSEFallback: with only a 2-row group, hoisting a pair saves
// exactly what the temp costs (or less), so the searched schedule is
// never strictly cheaper and the plain grouping must stand.
func TestCSEFallback(t *testing.T) {
	mat := proportionalMatrix(2, 8, 7)
	p := buildPlan(mat)
	if len(p.temps) != 0 {
		t.Fatalf("2-row proportional matrix: CSE adopted (cost %d vs plain %d), want fallback",
			p.cost, p.plainCost)
	}
	if p.cost != p.plainCost {
		t.Fatalf("fallback plan cost %d != plain cost %d", p.cost, p.plainCost)
	}
}

// TestPlanCostInvariant: whatever the compiler picks must never price
// worse than the plain schedule, across real generator matrices.
func TestPlanCostInvariant(t *testing.T) {
	for _, sh := range fusedShapes {
		for _, kind := range []MatrixKind{CauchyMatrix, VandermondeMatrix} {
			c, err := NewWithMatrix(sh.k, sh.m, kind)
			if err != nil {
				t.Fatal(err)
			}
			if c.plan.cost > c.plan.plainCost {
				t.Fatalf("RS(%d,%d) kind=%d: chosen cost %d exceeds plain %d",
					sh.k, sh.m, kind, c.plan.cost, c.plan.plainCost)
			}
			if len(c.plan.temps) > 0 && c.plan.cost >= c.plan.plainCost {
				t.Fatalf("RS(%d,%d) kind=%d: CSE adopted without strict win", sh.k, sh.m, kind)
			}
		}
	}
}

// TestSparseColumnsSkipped: all-zero columns (and a fully zero single
// row) must cost nothing and still produce correct output.
func TestSparseColumnsSkipped(t *testing.T) {
	rows := [][]byte{
		{5, 0, 9, 0, 1},
		{7, 0, 3, 0, 2},
		{1, 0, 4, 0, 8},
		{2, 0, 6, 0, 9},
		{0, 0, 0, 0, 0},
	}
	mat := matrixFromRows(rows)
	p := buildPlan(mat)
	for _, g := range p.groups {
		for _, col := range g.cols {
			if col == 1 || col == 3 {
				t.Fatalf("group at row %d swept all-zero column %d", g.lo, col)
			}
		}
	}
	const size = tileSize + 19
	r := rand.New(rand.NewSource(62))
	srcs := make([][]byte, 5)
	for i := range srcs {
		srcs[i] = make([]byte, size)
		r.Read(srcs[i])
	}
	dst := make([][]byte, 5)
	for i := range dst {
		dst[i] = make([]byte, size)
		r.Read(dst[i]) // dirty: zero row must be fully overwritten
	}
	p.apply(dst, srcs, size)
	want := refApply(mat, srcs, size)
	for i := range want {
		if !bytes.Equal(dst[i], want[i]) {
			t.Fatalf("sparse apply row %d differs from reference", i)
		}
	}
}

// TestCSEExtractRewriteInvariant: after extraction, evaluating the
// temporaries and the rewritten rows must reproduce the original linear
// map (checked symbolically on unit vectors).
func TestCSEExtractRewriteInvariant(t *testing.T) {
	mat := proportionalMatrix(8, 6, 9)
	orig := make([][]byte, mat.Rows)
	for i := range orig {
		orig[i] = append([]byte(nil), mat.Row(i)...)
	}
	work := make([][]byte, mat.Rows)
	for i := range work {
		work[i] = append([]byte(nil), mat.Row(i)...)
	}
	rewritten, temps := cseExtract(work)
	if len(temps) == 0 {
		t.Fatal("expected extraction on proportional matrix")
	}
	cols := mat.Cols
	// colVal[c][j]: coefficient of source j in logical column c.
	colVal := make([][]byte, cols+len(temps))
	for c := 0; c < cols; c++ {
		colVal[c] = make([]byte, cols)
		colVal[c][c] = 1
	}
	for ti, td := range temps {
		v := make([]byte, cols)
		for j := 0; j < cols; j++ {
			v[j] = colVal[td.a][j] ^ gf.Mul(td.cb, colVal[td.b][j])
		}
		colVal[cols+ti] = v
	}
	for i, row := range rewritten {
		for j := 0; j < cols; j++ {
			var got byte
			for c, coeff := range row {
				got ^= gf.Mul(coeff, colVal[c][j])
			}
			if got != orig[i][j] {
				t.Fatalf("row %d source %d: rewritten map %d != original %d", i, j, got, orig[i][j])
			}
		}
	}
}
