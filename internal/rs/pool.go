package rs

import "sync"

// bufPool recycles variable-size scratch blocks (the Update delta). The
// pooled object is a pointer so Put does not allocate; the backing array
// grows to the largest block size seen and is then reused.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func getBuf(n int) (*[]byte, []byte) {
	p := bufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	return p, (*p)[:n]
}

func putBuf(p *[]byte) { bufPool.Put(p) }
