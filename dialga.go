// Package dialga is the public facade of the DIALGA reproduction: a Go
// implementation of "Accelerating Erasure Coding on Persistent Memory
// via Adaptive Prefetcher Scheduling" (ICPP '25).
//
// The repository contains two halves:
//
//   - a real, usable erasure-coding library (Reed-Solomon, LRC and
//     XOR/bitmatrix codecs over GF(2^8)) — exposed here via Codec and
//     LRC;
//   - a cycle-level simulation of the paper's testbed (CPU caches, L2
//     stream prefetcher, Optane-style persistent memory) on which the
//     DIALGA scheduler and every baseline run — exposed here via
//     Reproduce and the dialga-bench command.
//
// On top of the library sits a networked shard service: internal/node
// (HTTP shard server speaking the on-disk shard format), internal/cluster
// (rack/zone-aware placement, read routing, per-class admission, the
// object gateway, and the background repair queue), and cmd/dialga-node
// (the combined daemon). See DESIGN.md and README.md "Running a cluster".
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package dialga

import (
	"context"
	"io"

	"dialga/internal/adapt"
	"dialga/internal/harness"
	"dialga/internal/lrc"
	"dialga/internal/obs"
	"dialga/internal/rs"
	"dialga/internal/stream"
)

// Codec is a systematic Reed-Solomon RS(k+m, k) erasure codec over
// GF(2^8): k data blocks produce m parity blocks; any k of the k+m
// blocks recover the stripe. Safe for concurrent use.
type Codec struct {
	code *rs.Code
}

// NewCodec constructs an RS(k+m, k) codec (Cauchy generator matrix).
func NewCodec(k, m int) (*Codec, error) {
	c, err := rs.New(k, m)
	if err != nil {
		return nil, err
	}
	return &Codec{code: c}, nil
}

// K returns the number of data blocks per stripe.
func (c *Codec) K() int { return c.code.K() }

// M returns the number of parity blocks per stripe.
func (c *Codec) M() int { return c.code.M() }

// Encode fills parity (m equally sized blocks) from data (k blocks).
func (c *Codec) Encode(data, parity [][]byte) error { return c.code.Encode(data, parity) }

// EncodeAppend allocates and returns the parity blocks for data.
func (c *Codec) EncodeAppend(data [][]byte) ([][]byte, error) { return c.code.EncodeAppend(data) }

// EncodeSum is the fused single-pass variant of Encode: it fills
// parity and returns the CRC-32C (Castagnoli) of every block — k data
// sums then m parity sums — folded tile-by-tile during the encode
// sweep while each tile is still cache-resident, instead of a second
// pass over all k+m blocks.
func (c *Codec) EncodeSum(data, parity [][]byte) ([]uint32, error) {
	return c.code.EncodeSum(data, parity)
}

// EncodeSumInto is EncodeSum writing the k+m checksums into
// caller-provided sums; it allocates nothing. The streaming encoder
// uses it automatically for its checksum trailers.
func (c *Codec) EncodeSumInto(sums []uint32, data, parity [][]byte) error {
	return c.code.EncodeSumInto(sums, data, parity)
}

// ReconstructSum is Reconstruct with fused checksums: rebuilt blocks
// additionally get their CRC-32C written to the matching entries of
// sums (len k+m); entries for blocks that were already present are
// left untouched.
func (c *Codec) ReconstructSum(blocks [][]byte, sums []uint32) error {
	return c.code.ReconstructSum(blocks, sums)
}

// Reconstruct repairs a stripe in place: blocks holds k+m entries in
// stripe order with nil for missing blocks (at most m may be nil).
func (c *Codec) Reconstruct(blocks [][]byte) error { return c.code.Reconstruct(blocks) }

// Verify reports whether parity is consistent with data.
func (c *Codec) Verify(data, parity [][]byte) (bool, error) { return c.code.Verify(data, parity) }

// ReconstructData repairs only the data blocks of a stripe in place,
// skipping parity rebuilds — the fast path for serving reads from a
// degraded stripe. The streaming decoder uses it automatically.
func (c *Codec) ReconstructData(blocks [][]byte) error { return c.code.ReconstructData(blocks) }

// Update applies an incremental parity update after data block idx
// changes from oldData to newData.
func (c *Codec) Update(idx int, oldData, newData []byte, parity [][]byte) error {
	return c.code.Update(idx, oldData, newData, parity)
}

// LRC is an Azure-style locally repairable code LRC(k, m, l): m global
// Reed-Solomon parities plus one XOR parity per group of k/l data
// blocks, so single failures repair from k/l blocks instead of k.
type LRC struct {
	code *lrc.Code
}

// NewLRC constructs an LRC(k, m, l) codec; l must divide k.
func NewLRC(k, m, l int) (*LRC, error) {
	c, err := lrc.New(k, m, l)
	if err != nil {
		return nil, err
	}
	return &LRC{code: c}, nil
}

// K returns the data block count.
func (c *LRC) K() int { return c.code.K() }

// M returns the global parity count.
func (c *LRC) M() int { return c.code.M() }

// L returns the local group count.
func (c *LRC) L() int { return c.code.L() }

// EncodeAppend returns (global, local) parity blocks for data.
func (c *LRC) EncodeAppend(data [][]byte) (global, local [][]byte, err error) {
	return c.code.EncodeAppend(data)
}

// Reconstruct repairs a stripe of k+m+l blocks in place, preferring
// cheap local repair when possible.
func (c *LRC) Reconstruct(blocks [][]byte) error { return c.code.Reconstruct(blocks) }

// RepairCost returns the number of blocks read to repair block idx
// under the current erasure pattern.
func (c *LRC) RepairCost(blocks [][]byte, idx int) int { return c.code.RepairCost(blocks, idx) }

// Verify reports whether all parities are consistent with data.
func (c *LRC) Verify(data, global, local [][]byte) (bool, error) {
	return c.code.Verify(data, global, local)
}

// Split partitions a byte stream into exactly k equally sized shards
// (zero-padded tail) suitable for Codec.Encode. Shards that fit
// entirely inside data alias its storage — mutating them mutates the
// input. Use SplitCopy when the shards are modified independently.
func Split(data []byte, k int) ([][]byte, error) { return rs.Split(data, k) }

// SplitCopy is Split with every shard freshly allocated: the returned
// shards never alias data.
func SplitCopy(data []byte, k int) ([][]byte, error) { return rs.SplitCopy(data, k) }

// Join reassembles the original stream of the given length from the k
// data shards produced by Split.
func Join(shards [][]byte, size int) ([]byte, error) { return rs.Join(shards, size) }

// Streaming pipeline — see internal/stream. The pipeline chunks an
// io.Reader into stripes, encodes them on a worker pool, and emits
// shards through an order-preserving bounded window, so files of any
// size are processed in O(stripe) memory.

// StreamOptions configures a streaming pipeline. StreamOptions.Codec
// accepts a *Codec directly; wrap an *LRC with its StreamCodec method.
// The straggler-tolerance knobs (HedgeAfter, DeadlineMult, MaxRetries,
// Backoff, BreakerThreshold, BreakerCooldown, Seed) configure the
// decoder's hedged degraded reads, retry policy, and per-shard circuit
// breakers; hedging is off until HedgeAfter is set.
type StreamOptions = stream.Options

// StreamCodec is the stripe-level codec interface the pipeline drives.
type StreamCodec = stream.Codec

// StreamStats is a snapshot of pipeline counters: stripes, bytes
// in/out, reconstruction and integrity counts (ShardsCorrupted,
// StripesHealed, TransientFaults), straggler-tolerance counts
// (HedgedReads, HedgeWins, BreakerTrips, Retries, WorkerPanics), and a
// stripe-latency histogram.
type StreamStats = stream.Stats

// StreamPanicError is a panic recovered from a pipeline or shard-reader
// goroutine, surfaced as an ordinary error (and counted in
// StreamStats.WorkerPanics) instead of crashing the process.
type StreamPanicError = stream.PanicError

// StreamChecksum selects the per-block integrity trailer of a
// streaming pipeline. The zero value is StreamChecksumCRC32C, so
// integrity is on unless explicitly disabled.
type StreamChecksum = stream.Checksum

const (
	// StreamChecksumCRC32C appends a 4-byte CRC-32C (Castagnoli)
	// trailer to every shard block; the decoder verifies each block
	// and demotes failures to per-stripe erasures, healing them
	// through reconstruction.
	StreamChecksumCRC32C = stream.ChecksumCRC32C
	// StreamChecksumNone writes bare blocks (the legacy framing):
	// silent corruption is not detected.
	StreamChecksumNone = stream.ChecksumNone
)

// ErrTooManyCorrupt is returned (wrapped, with stripe context) when a
// stripe has fewer than k usable shard blocks after corrupt, missing,
// and failed shards are discounted; the decoder never emits
// unverified bytes instead.
var ErrTooManyCorrupt = stream.ErrTooManyCorrupt

// StreamEncoder is a reusable streaming erasure encoder.
type StreamEncoder = stream.Encoder

// StreamDecoder is a reusable streaming erasure decoder.
type StreamDecoder = stream.Decoder

// NewStreamEncoder validates opts and returns a streaming encoder.
func NewStreamEncoder(opts StreamOptions) (*StreamEncoder, error) { return stream.NewEncoder(opts) }

// NewStreamDecoder validates opts and returns a streaming decoder.
func NewStreamDecoder(opts StreamOptions) (*StreamDecoder, error) { return stream.NewDecoder(opts) }

// StreamEncode pipes r through a concurrent encoding pipeline, writing
// shard i of every stripe to shards[i] (k data writers then m parity
// writers). It returns the pipeline counters alongside any error.
func StreamEncode(ctx context.Context, opts StreamOptions, r io.Reader, shards []io.Writer) (StreamStats, error) {
	enc, err := stream.NewEncoder(opts)
	if err != nil {
		return StreamStats{}, err
	}
	err = enc.Encode(ctx, r, shards)
	return enc.Stats(), err
}

// StreamDecode reconstructs the original stream from k+m shard readers
// (nil entries and mid-stream failures tolerated, up to m per stripe)
// and writes exactly size bytes to w; size < 0 decodes until EOF,
// including the encoder's tail padding.
func StreamDecode(ctx context.Context, opts StreamOptions, shards []io.Reader, w io.Writer, size int64) (StreamStats, error) {
	dec, err := stream.NewDecoder(opts)
	if err != nil {
		return StreamStats{}, err
	}
	err = dec.Decode(ctx, shards, w, size)
	return dec.Stats(), err
}

// StreamCodec adapts the LRC to the streaming pipeline: its m global
// and l local parities appear as m+l parity shards in stripe order.
func (c *LRC) StreamCodec() StreamCodec { return stream.WrapLRC(c.code) }

// Observability — see internal/obs. Pipelines register their counters,
// gauges, and latency histograms in a MetricsRegistry set on
// StreamOptions.Metrics, and record per-stripe lifecycle spans into a
// StreamTracer set on StreamOptions.Trace. The registry renders in the
// Prometheus text exposition format via its Expose method;
// `dialga-bench -serve :PORT` mounts both at /metrics and
// /debug/trace.

// MetricsRegistry is an atomic metrics registry: counters, gauges, and
// log-linear histograms addressable by name + labels, rendered in
// Prometheus text format with Expose. All methods are safe for
// concurrent use, and all methods on a nil registry (and on nil
// metrics obtained from one) are no-ops.
type MetricsRegistry = obs.Registry

// MetricLabel is one name/value label pair qualifying a metric series.
type MetricLabel = obs.Label

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// StreamTracer records per-stripe lifecycle spans (read → verify →
// reconstruct → emit, annotated with hedge/breaker/heal decisions)
// into a fixed-capacity ring; Snapshot and WriteJSON read it back,
// newest first.
type StreamTracer = obs.Tracer

// StreamSpan is one traced stripe lifecycle.
type StreamSpan = obs.Span

// NewStreamTracer returns a tracer retaining the last capacity spans
// (DefaultTraceCapacity when capacity <= 0).
func NewStreamTracer(capacity int) *StreamTracer { return obs.NewTracer(capacity) }

// DefaultTraceCapacity is the span-ring size NewStreamTracer applies
// when none is given.
const DefaultTraceCapacity = obs.DefaultTraceCapacity

// Adaptive control — see internal/adapt. An AdaptiveController closes
// the paper's scheduling loop on a live pipeline: it samples the
// pipeline's own metrics and spans, runs the relative-threshold
// policy (aggressive when latency regresses against its trailing
// baseline, back off when speculative work is mostly useless), and
// republishes the knob set — readahead depth, hedge interval,
// reconstruction-deadline multiplier, worker count, in-flight window
// — which the pipeline re-reads at every stripe boundary.
//
// Wiring: build a MetricsRegistry and (optionally) a StreamTracer,
// set both on StreamOptions, hand NewAdaptiveSignals over them to
// NewAdaptiveController, and set the controller as
// StreamOptions.Tuner. With EveryPulls set the controller ticks
// synchronously at stripe boundaries (deterministic, what the tests
// and the A/B benchmark use); otherwise call Run/Stop for
// wall-clock ticks.

// AdaptiveController is the feedback controller; it implements the
// pipeline's Tuner hook directly.
type AdaptiveController = adapt.Controller

// AdaptiveOptions configures a controller: signal source, initial
// knobs, policy thresholds, pacing, and observability sinks.
type AdaptiveOptions = adapt.Options

// AdaptiveKnobs is one atomic knob set published to the pipeline.
type AdaptiveKnobs = adapt.Knobs

// AdaptivePolicyConfig tunes the policy's trigger thresholds; zero
// fields take the paper-derived defaults.
type AdaptivePolicyConfig = adapt.Config

// AdaptiveDecision is the reproducible outcome of one policy tick,
// retained in the controller's history.
type AdaptiveDecision = adapt.Decision

// NewAdaptiveController validates opts and returns a controller ready
// to use as StreamOptions.Tuner.
func NewAdaptiveController(opts AdaptiveOptions) (*AdaptiveController, error) {
	return adapt.New(opts)
}

// NewAdaptiveSignals returns the signal source an AdaptiveController
// samples: pipeline counters from reg, stripe-latency quantiles from
// tracer (optional), and the per-shard latency EWMAs of a k+m shard
// group. Set the same reg and tracer on the pipeline's StreamOptions.
func NewAdaptiveSignals(reg *MetricsRegistry, tracer *StreamTracer, shards int) *adapt.RegistrySource {
	return adapt.NewRegistrySource(reg, tracer, shards)
}

// Figure is a reproduced paper figure; see internal/harness.
type Figure = harness.Figure

// FigureIDs lists the reproducible paper figures in order.
func FigureIDs() []string { return append([]string(nil), harness.FigureIDs...) }

// Reproduce regenerates one paper figure on the simulated testbed.
// Quick trims working sets and sweeps for smoke runs; full runs are
// what EXPERIMENTS.md records.
func Reproduce(figureID string, quick bool) (*Figure, error) {
	r := &harness.Runner{Quick: quick}
	return r.ByID(figureID)
}
