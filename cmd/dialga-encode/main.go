// Command dialga-encode is a real file erasure-coding tool built on the
// repository's byte-level RS codec: it splits a file into k data shards
// plus m parity shards, verifies stripes, and reconstructs the original
// file from any k surviving shards.
//
//	dialga-encode -mode encode -k 8 -m 4 -in data.bin -dir shards/
//	dialga-encode -mode decode -k 8 -m 4 -out restored.bin -dir shards/
//
// Shards are named shard.000 .. shard.(k+m-1); delete up to m of them
// and decode still succeeds.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dialga/internal/rs"
)

const shardMagic = 0xd1a16aec

func main() {
	var (
		mode = flag.String("mode", "", "encode or decode")
		k    = flag.Int("k", 8, "data shards")
		m    = flag.Int("m", 4, "parity shards")
		in   = flag.String("in", "", "input file (encode)")
		out  = flag.String("out", "", "output file (decode)")
		dir  = flag.String("dir", "shards", "shard directory")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "encode":
		err = encode(*k, *m, *in, *dir)
	case "decode":
		err = decode(*k, *m, *out, *dir)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dialga-encode:", err)
		os.Exit(1)
	}
}

func shardPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard.%03d", i))
}

// header is 16 bytes: magic, original file size, shard payload size.
func writeHeader(buf []byte, fileSize, shardSize uint64) {
	binary.LittleEndian.PutUint32(buf[0:], shardMagic)
	binary.LittleEndian.PutUint32(buf[4:], 0)
	binary.LittleEndian.PutUint64(buf[8:], fileSize)
	_ = shardSize
}

func encode(k, m int, in, dir string) error {
	if in == "" {
		return fmt.Errorf("encode needs -in")
	}
	code, err := rs.New(k, m)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	data, err := rs.Split(raw, k)
	if err != nil {
		return err
	}
	shardSize := len(data[0])
	parity, err := code.EncodeAppend(data)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	all := append(append([][]byte{}, data...), parity...)
	hdr := make([]byte, 16)
	writeHeader(hdr, uint64(len(raw)), uint64(shardSize))
	for i, shard := range all {
		f, err := os.Create(shardPath(dir, i))
		if err != nil {
			return err
		}
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(shard); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("encoded %d bytes into %d data + %d parity shards of %d bytes in %s\n",
		len(raw), k, m, shardSize, dir)
	return nil
}

func decode(k, m int, out, dir string) error {
	if out == "" {
		return fmt.Errorf("decode needs -out")
	}
	code, err := rs.New(k, m)
	if err != nil {
		return err
	}
	blocks := make([][]byte, k+m)
	var fileSize uint64
	var present int
	for i := range blocks {
		raw, err := os.ReadFile(shardPath(dir, i))
		if err != nil {
			continue // missing shard
		}
		if len(raw) < 16 || binary.LittleEndian.Uint32(raw[0:]) != shardMagic {
			return fmt.Errorf("shard %d: bad header", i)
		}
		fileSize = binary.LittleEndian.Uint64(raw[8:])
		blocks[i] = raw[16:]
		present++
	}
	if present < k {
		return fmt.Errorf("only %d shards present, need at least %d", present, k)
	}
	if err := code.Reconstruct(blocks); err != nil {
		return err
	}
	outBuf, err := rs.Join(blocks[:k], int(fileSize))
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, outBuf, 0o644); err != nil {
		return err
	}
	fmt.Printf("reconstructed %d bytes from %d shards into %s\n", fileSize, present, out)
	return nil
}
