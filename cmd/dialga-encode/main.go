// Command dialga-encode is a real file erasure-coding tool built on the
// repository's streaming RS pipeline: it chunks a file into stripes,
// encodes them on a worker pool into k data + m parity shard files, and
// reconstructs the original file from any k surviving shards — all in
// O(stripe) memory, so files far larger than RAM round-trip.
//
//	dialga-encode -mode encode -k 8 -m 4 -in data.bin -dir shards/
//	dialga-encode -mode decode -k 8 -m 4 -out restored.bin -dir shards/
//
// Shards are named shard.000 .. shard.(k+m-1); delete up to m of them
// and decode still succeeds. Each shard file starts with a self-
// describing v3 header (geometry, shard index, stripe count, file
// size, checksum algorithm, header self-CRC — see internal/shardfile),
// and every stripe block carries a CRC-32C trailer. Decoding with
// mismatched -k/-m flags, a shard copied from another geometry, a
// corrupted header, or a truncated shard file fails loudly; a shard
// block whose trailer does not verify is demoted to an erasure for
// that stripe and healed through reconstruction. Legacy v2 shard sets
// (no trailers) still decode.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"dialga/internal/rs"
	"dialga/internal/shardfile"
	"dialga/internal/stream"
)

func main() {
	var (
		mode    = flag.String("mode", "", "encode or decode")
		k       = flag.Int("k", 8, "data shards")
		m       = flag.Int("m", 4, "parity shards")
		in      = flag.String("in", "", "input file (encode)")
		out     = flag.String("out", "", "output file (decode)")
		dir     = flag.String("dir", "shards", "shard directory")
		stripe  = flag.Int("stripe", stream.DefaultStripeSize, "stripe size in bytes (data payload per stripe)")
		workers = flag.Int("workers", 0, "encoding workers (0 = GOMAXPROCS)")
		fused   = flag.Bool("fused", true, "use the single-pass fused encode+CRC sweep (false: two-pass; output is byte-identical)")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "encode":
		err = encode(*k, *m, *in, *dir, *stripe, *workers, *fused)
	case "decode":
		err = decode(*k, *m, *out, *dir, *workers)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dialga-encode:", err)
		os.Exit(1)
	}
}

func shardPath(dir string, i int) string {
	return shardfile.Path(dir, i)
}

func encode(k, m int, in, dir string, stripeSize, workers int, fused bool) error {
	if in == "" {
		return fmt.Errorf("encode needs -in")
	}
	code, err := rs.New(k, m)
	if err != nil {
		return err
	}
	enc, err := stream.NewEncoder(stream.Options{
		Codec: code, StripeSize: stripeSize, Workers: workers,
		Checksum: stream.ChecksumCRC32C, DisableFused: !fused,
	})
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	fileSize := uint64(fi.Size())
	stripes := (fileSize + uint64(enc.StripeSize()) - 1) / uint64(enc.StripeSize())

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := make([]*os.File, k+m)
	writers := make([]io.Writer, k+m)
	bws := make([]*bufio.Writer, k+m)
	defer func() {
		for _, sf := range files {
			if sf != nil {
				sf.Close()
			}
		}
	}()
	for i := range files {
		sf, err := os.Create(shardPath(dir, i))
		if err != nil {
			return err
		}
		files[i] = sf
		hdr := shardfile.Header{
			Version: shardfile.VersionV3,
			K:       uint32(k), M: uint32(m), Index: uint32(i),
			ShardSize: uint32(enc.ShardSize()), StripeCount: stripes, FileSize: fileSize,
			Algo: shardfile.AlgoCRC32C,
		}
		if _, err := sf.Write(hdr.Marshal()); err != nil {
			return err
		}
		bws[i] = bufio.NewWriter(sf)
		writers[i] = bws[i]
	}

	if err := enc.Encode(context.Background(), bufio.NewReaderSize(f, 1<<20), writers); err != nil {
		return err
	}
	st := enc.Stats()
	if st.BytesIn != fileSize || st.Stripes != stripes {
		return fmt.Errorf("input changed during encode: read %d bytes / %d stripes, expected %d / %d",
			st.BytesIn, st.Stripes, fileSize, stripes)
	}
	for i := range files {
		if err := bws[i].Flush(); err != nil {
			return err
		}
		if err := files[i].Close(); err != nil {
			return err
		}
		files[i] = nil
	}
	fmt.Printf("encoded %d bytes into %d data + %d parity shards (%d stripes of %d bytes/shard + crc32c) in %s\n",
		fileSize, k, m, stripes, enc.ShardSize(), dir)
	return nil
}

// openShards opens and validates every present shard file, returning
// one reader per stripe-order slot (nil = missing shard), the
// agreed-upon header, and a closer for the opened files. Any header
// inconsistency — mismatched flags, cross-geometry shards, mixed
// checksum algorithms, truncated or ragged files — is an error.
// Both v2 (bare blocks) and v3 (checksummed) shard sets are accepted,
// but not a mixture.
func openShards(k, m int, dir string) (readers []io.Reader, agreed shardfile.Header, present int, closeAll func(), err error) {
	readers = make([]io.Reader, k+m)
	var files []*os.File
	closeAll = func() {
		for _, f := range files {
			f.Close()
		}
	}
	defer func() {
		if err != nil {
			closeAll()
		}
	}()
	for i := 0; i < k+m; i++ {
		f, openErr := os.Open(shardPath(dir, i))
		if openErr != nil {
			continue // missing shard
		}
		files = append(files, f)
		h, parseErr := shardfile.Parse(f)
		if parseErr != nil {
			return nil, agreed, 0, closeAll, fmt.Errorf("shard %d: %w", i, parseErr)
		}
		if int(h.K) != k || int(h.M) != m {
			return nil, agreed, 0, closeAll, fmt.Errorf("shard %d: encoded with k=%d m=%d, flags say k=%d m=%d",
				i, h.K, h.M, k, m)
		}
		if int(h.Index) != i {
			return nil, agreed, 0, closeAll, fmt.Errorf("shard %d: header says index %d (file renamed or copied?)", i, h.Index)
		}
		if present == 0 {
			agreed = h
		} else if h.ShardSize != agreed.ShardSize || h.StripeCount != agreed.StripeCount ||
			h.FileSize != agreed.FileSize || h.Algo != agreed.Algo || h.Version != agreed.Version {
			return nil, agreed, 0, closeAll, fmt.Errorf("shard %d: header disagrees with shard %d (mixed encodings?)", i, agreed.Index)
		}
		fi, statErr := f.Stat()
		if statErr != nil {
			return nil, agreed, 0, closeAll, statErr
		}
		if fi.Size() != h.ExpectedFileSize() {
			return nil, agreed, 0, closeAll, fmt.Errorf("shard %d: %d bytes on disk, want %d (truncated or ragged)", i, fi.Size(), h.ExpectedFileSize())
		}
		readers[i] = bufio.NewReaderSize(f, 1<<20)
		present++
	}
	if present < k {
		return nil, agreed, 0, closeAll, fmt.Errorf("only %d shards present, need at least %d", present, k)
	}
	return readers, agreed, present, closeAll, nil
}

func decode(k, m int, out, dir string, workers int) error {
	if out == "" {
		return fmt.Errorf("decode needs -out")
	}
	code, err := rs.New(k, m)
	if err != nil {
		return err
	}
	readers, hdr, present, closeShards, err := openShards(k, m, dir)
	if err != nil {
		return err
	}
	defer closeShards()
	dec, err := stream.NewDecoder(stream.Options{
		Codec:      code,
		StripeSize: int(hdr.ShardSize) * k,
		Workers:    workers,
		Checksum:   hdr.Algo.Stream(),
	})
	if err != nil {
		return err
	}
	if dec.ShardSize() != int(hdr.ShardSize) && hdr.StripeCount > 0 {
		return fmt.Errorf("shard size %d does not fit geometry k=%d", hdr.ShardSize, k)
	}
	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	w := bufio.NewWriterSize(of, 1<<20)
	if err := dec.Decode(context.Background(), readers, w, int64(hdr.FileSize)); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}
	st := dec.Stats()
	fmt.Printf("reconstructed %d bytes from %d shards (%d stripes, %d reconstructed) into %s\n",
		hdr.FileSize, present, st.Stripes, st.Reconstructed, out)
	if st.ShardsCorrupted > 0 {
		fmt.Printf("healed %d corrupt shard blocks across %d stripes\n", st.ShardsCorrupted, st.StripesHealed)
	}
	return nil
}
