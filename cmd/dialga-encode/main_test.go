package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"dialga/internal/rs"
	"dialga/internal/shardfile"
	"dialga/internal/stream"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")

	payload := make([]byte, 100123)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := os.WriteFile(in, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(8, 4, in, shards, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	// Remove m shards (mixed data + parity).
	for _, i := range []int{0, 5, 9, 11} {
		if err := os.Remove(shardPath(shards, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := decode(8, 4, out, shards, 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("roundtrip corrupted the payload")
	}
}

// TestEncodeDecodeMultiStripe uses a stripe size far smaller than the
// payload so the pipeline runs many stripes, and drops shards so every
// stripe needs reconstruction.
func TestEncodeDecodeMultiStripe(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")

	payload := make([]byte, 5*64<<10+7777)
	for i := range payload {
		payload[i] = byte(i*131 + i>>9)
	}
	if err := os.WriteFile(in, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, in, shards, 16<<10, 3, true); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 4} {
		if err := os.Remove(shardPath(shards, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := decode(4, 2, out, shards, 3); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-stripe roundtrip corrupted the payload")
	}
}

// TestLargeFileStreams round-trips a file much larger than the
// pipeline's stripe memory budget (window * stripe), demonstrating
// O(stripe) rather than O(file) memory. 64 MiB keeps CI fast; the
// behaviour is size-independent.
func TestLargeFileStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("large-file roundtrip skipped in -short mode")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")

	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for i := 0; i < 64; i++ {
		for j := range buf {
			buf[j] = byte(i + j*7)
		}
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := encode(8, 4, in, shards, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 7, 10} {
		if err := os.Remove(shardPath(shards, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := decode(8, 4, out, shards, 0); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("large-file roundtrip corrupted the payload")
	}
}

func TestDecodeTooFewShards(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	shards := filepath.Join(dir, "shards")
	if err := os.WriteFile(in, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, in, shards, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2} { // 3 > m=2 lost
		os.Remove(shardPath(shards, i))
	}
	if err := decode(4, 2, filepath.Join(dir, "out.bin"), shards, 0); err == nil {
		t.Fatal("decode succeeded with fewer than k shards")
	}
}

func TestEncodeTinyFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")
	if err := os.WriteFile(in, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(8, 4, in, shards, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := decode(8, 4, out, shards, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(out)
	if string(got) != "x" {
		t.Fatalf("tiny file roundtrip got %q", got)
	}
}

func TestEncodeEmptyFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")
	if err := os.WriteFile(in, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, in, shards, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := decode(4, 2, out, shards, 0); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file roundtrip produced %d bytes", len(got))
	}
}

func TestDecodeBadHeader(t *testing.T) {
	dir := t.TempDir()
	shards := filepath.Join(dir, "shards")
	os.MkdirAll(shards, 0o755)
	for i := 0; i < 6; i++ {
		os.WriteFile(shardPath(shards, i), []byte("garbage-garbage-garbage-garbage-garbage!"), 0o644)
	}
	if err := decode(4, 2, filepath.Join(dir, "out.bin"), shards, 0); err == nil {
		t.Fatal("garbage shards accepted")
	}
}

// TestDecodeMismatchedGeometry pins the headline satellite fix: shards
// encoded as RS(8+4) must be rejected when decoded with -k/-m flags
// for a different geometry, instead of silently corrupting output.
func TestDecodeMismatchedGeometry(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	shards := filepath.Join(dir, "shards")
	payload := make([]byte, 50000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := os.WriteFile(in, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(8, 4, in, shards, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := decode(6, 6, filepath.Join(dir, "out.bin"), shards, 0); err == nil {
		t.Fatal("decode accepted mismatched k/m flags")
	}
	if err := decode(4, 2, filepath.Join(dir, "out.bin"), shards, 0); err == nil {
		t.Fatal("decode accepted a smaller geometry")
	}
}

// TestDecodeForeignShard rejects a shard file copied in from an
// encoding with a different geometry.
func TestDecodeForeignShard(t *testing.T) {
	dir := t.TempDir()
	inA := filepath.Join(dir, "a.bin")
	inB := filepath.Join(dir, "b.bin")
	shardsA := filepath.Join(dir, "shardsA")
	shardsB := filepath.Join(dir, "shardsB")
	if err := os.WriteFile(inA, bytes.Repeat([]byte("A"), 10000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(inB, bytes.Repeat([]byte("B"), 20000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, inA, shardsA, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, inB, shardsB, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	// Same geometry, different encoding: headers disagree on file size.
	data, err := os.ReadFile(shardPath(shardsB, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shardPath(shardsA, 2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decode(4, 2, filepath.Join(dir, "out.bin"), shardsA, 0); err == nil {
		t.Fatal("decode accepted a shard from a different encoding")
	}
}

// TestDecodeShardIndexMismatch rejects a shard renamed into another
// slot.
func TestDecodeShardIndexMismatch(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	shards := filepath.Join(dir, "shards")
	if err := os.WriteFile(in, bytes.Repeat([]byte("z"), 5000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, in, shards, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	// Swap two shard files on disk.
	a, _ := os.ReadFile(shardPath(shards, 0))
	b, _ := os.ReadFile(shardPath(shards, 3))
	os.WriteFile(shardPath(shards, 0), b, 0o644)
	os.WriteFile(shardPath(shards, 3), a, 0o644)
	if err := decode(4, 2, filepath.Join(dir, "out.bin"), shards, 0); err == nil {
		t.Fatal("decode accepted renamed shard files")
	}
}

// TestDecodeTruncatedShard rejects a shard whose payload does not match
// stripeCount * shardSize.
func TestDecodeTruncatedShard(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	shards := filepath.Join(dir, "shards")
	if err := os.WriteFile(in, bytes.Repeat([]byte("q"), 30000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, in, shards, 1<<20, 0, true); err != nil {
		t.Fatal(err)
	}
	p := shardPath(shards, 1)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := decode(4, 2, filepath.Join(dir, "out.bin"), shards, 0); err == nil {
		t.Fatal("decode accepted a truncated shard file")
	}
}

// TestDecodeHealsCorruptBlocks is the end-to-end integrity story: flip
// bits inside the stripe blocks of m different shard files (without
// touching headers or file sizes) and decode must still produce the
// exact payload, healing the corrupt blocks through reconstruction.
func TestDecodeHealsCorruptBlocks(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")

	payload := make([]byte, 6*8<<10+991)
	for i := range payload {
		payload[i] = byte(i*17 + i>>8)
	}
	if err := os.WriteFile(in, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, in, shards, 8<<10, 2, true); err != nil {
		t.Fatal(err)
	}
	// Corrupt blocks in m=2 shards: one data, one parity, different
	// stripes.
	for _, c := range []struct {
		shard  int
		offset int64 // into the block region, past the header
	}{
		{shard: 1, offset: 100},
		{shard: 5, offset: 5000},
	} {
		p := shardPath(shards, c.shard)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[int64(shardfile.HeaderSizeV3)+c.offset] ^= 0x10
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := decode(4, 2, out, shards, 2); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("decode did not heal corrupt shard blocks byte-exactly")
	}
}

// writeV2Shards produces a legacy v2 shard directory: 40-byte headers,
// bare blocks, no trailers — what a pre-v3 dialga-encode wrote.
func writeV2Shards(t *testing.T, dir string, k, m, stripeSize int, payload []byte) {
	t.Helper()
	code, err := rs.New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := stream.NewEncoder(stream.Options{
		Codec: code, StripeSize: stripeSize, Checksum: stream.ChecksumNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	stripes := (uint64(len(payload)) + uint64(enc.StripeSize()) - 1) / uint64(enc.StripeSize())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	files := make([]*os.File, k+m)
	writers := make([]io.Writer, k+m)
	for i := range files {
		f, err := os.Create(shardPath(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		hdr := shardfile.Header{
			Version: shardfile.VersionV2,
			K:       uint32(k), M: uint32(m), Index: uint32(i),
			ShardSize: uint32(enc.ShardSize()), StripeCount: stripes,
			FileSize: uint64(len(payload)),
		}
		if _, err := f.Write(hdr.Marshal()); err != nil {
			t.Fatal(err)
		}
		files[i], writers[i] = f, f
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
}

// TestShardFormatCompat is the table-driven header suite: v2 shard
// sets (trailer-less) must still decode, corrupted v3 headers must be
// rejected by the self-CRC, and truncated trailers must be rejected
// by the exact-size check.
func TestShardFormatCompat(t *testing.T) {
	payload := make([]byte, 3*4<<10+123)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	cases := []struct {
		name    string
		prepare func(t *testing.T, dir string) // builds/mutates the shard dir
		wantErr bool
	}{
		{
			name: "v3 round trip",
			prepare: func(t *testing.T, dir string) {
			},
			wantErr: false,
		},
		{
			name: "v2 legacy set decodes",
			prepare: func(t *testing.T, dir string) {
				os.RemoveAll(dir)
				writeV2Shards(t, dir, 4, 2, 4<<10, payload)
			},
			wantErr: false,
		},
		{
			name: "v2 set with m shards missing decodes",
			prepare: func(t *testing.T, dir string) {
				os.RemoveAll(dir)
				writeV2Shards(t, dir, 4, 2, 4<<10, payload)
				for _, i := range []int{0, 4} {
					if err := os.Remove(shardPath(dir, i)); err != nil {
						t.Fatal(err)
					}
				}
			},
			wantErr: false,
		},
		{
			name: "corrupted header field fails self-CRC",
			prepare: func(t *testing.T, dir string) {
				p := shardPath(dir, 2)
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				data[20] ^= 1 // shard-size field: plausible without the CRC
				if err := os.WriteFile(p, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
		{
			name: "corrupted header self-CRC word rejected",
			prepare: func(t *testing.T, dir string) {
				p := shardPath(dir, 0)
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				data[45] ^= 0x80
				if err := os.WriteFile(p, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
		{
			name: "truncated trailer rejected",
			prepare: func(t *testing.T, dir string) {
				p := shardPath(dir, 3)
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				// Chop 2 bytes: the final block's CRC trailer is cut.
				if err := os.WriteFile(p, data[:len(data)-2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			in := filepath.Join(dir, "in.bin")
			out := filepath.Join(dir, "out.bin")
			shards := filepath.Join(dir, "shards")
			if err := os.WriteFile(in, payload, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := encode(4, 2, in, shards, 4<<10, 0, true); err != nil {
				t.Fatal(err)
			}
			tc.prepare(t, shards)
			err := decode(4, 2, out, shards, 0)
			if tc.wantErr {
				if err == nil {
					t.Fatal("decode accepted a damaged shard set")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("decoded payload differs")
			}
		})
	}
}
