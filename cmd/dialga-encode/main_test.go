package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")

	payload := make([]byte, 100123)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := os.WriteFile(in, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(8, 4, in, shards); err != nil {
		t.Fatal(err)
	}
	// Remove m shards (mixed data + parity).
	for _, i := range []int{0, 5, 9, 11} {
		if err := os.Remove(shardPath(shards, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := decode(8, 4, out, shards); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("roundtrip corrupted the payload")
	}
}

func TestDecodeTooFewShards(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	shards := filepath.Join(dir, "shards")
	if err := os.WriteFile(in, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(4, 2, in, shards); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2} { // 3 > m=2 lost
		os.Remove(shardPath(shards, i))
	}
	if err := decode(4, 2, filepath.Join(dir, "out.bin"), shards); err == nil {
		t.Fatal("decode succeeded with fewer than k shards")
	}
}

func TestEncodeTinyFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	shards := filepath.Join(dir, "shards")
	if err := os.WriteFile(in, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := encode(8, 4, in, shards); err != nil {
		t.Fatal(err)
	}
	if err := decode(8, 4, out, shards); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(out)
	if string(got) != "x" {
		t.Fatalf("tiny file roundtrip got %q", got)
	}
}

func TestDecodeBadHeader(t *testing.T) {
	dir := t.TempDir()
	shards := filepath.Join(dir, "shards")
	os.MkdirAll(shards, 0o755)
	for i := 0; i < 6; i++ {
		os.WriteFile(shardPath(shards, i), []byte("garbage-garbage-garbage"), 0o644)
	}
	if err := decode(4, 2, filepath.Join(dir, "out.bin"), shards); err == nil {
		t.Fatal("garbage shards accepted")
	}
}
