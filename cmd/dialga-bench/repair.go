package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dialga/internal/cluster"
	"dialga/internal/node"
	"dialga/internal/obs"
)

// repairConfig shapes the repair-convergence benchmark.
type repairConfig struct {
	Nodes     int   `json:"nodes"`
	K         int   `json:"k"`
	M         int   `json:"m"`
	Quorum    int   `json:"write_quorum"`
	Objects   int   `json:"objects"`
	ObjectKiB int   `json:"object_kib"`
	StripeKiB int   `json:"stripe_kib"`
	Seed      int64 `json:"seed"`
}

// repairResult is the benchmark's emitted shape (BENCH_repair.json in
// CI): how fast a cluster full of quorum-degraded puts converges back
// to full redundancy once the missing node returns.
type repairResult struct {
	Config          repairConfig `json:"config"`
	DegradedPuts    int          `json:"degraded_puts"`
	IntentsLogged   int          `json:"intents_logged"`
	IntentsAdopted  int          `json:"intents_adopted"`
	RepairedShards  int          `json:"repaired_shards"`
	ConvergeMS      float64      `json:"converge_ms"`
	RepairMBps      float64      `json:"repair_mbps"`
	IntentsDrained  bool         `json:"intents_drained"`
	FinalScrubClean bool         `json:"final_scrub_clean"`
}

// runRepairBench stands up an in-process cluster with one node down,
// streams quorum-acknowledged (degraded) puts through the gateway so
// every object owes one shard to the intent journal, then brings the
// node back and measures how long intent adoption plus the priority
// repair queue take to restore full redundancy.
func runRepairBench(quick, asJSON bool) error {
	cfg := repairConfig{
		Nodes: 6, K: 4, M: 2, Quorum: 5,
		Objects: 12, ObjectKiB: 1024, StripeKiB: 256,
		Seed: 42,
	}
	if quick {
		cfg.Objects, cfg.ObjectKiB, cfg.StripeKiB = 4, 128, 64
	}

	root, err := os.MkdirTemp("", "dialga-repair-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	reg := obs.NewRegistry()
	nodes := make([]*benchNode, cfg.Nodes)
	for i := range nodes {
		nodes[i] = &benchNode{
			id:   cluster.NodeID(fmt.Sprintf("n%d", i)),
			dir:  filepath.Join(root, fmt.Sprintf("n%d", i)),
			addr: "127.0.0.1:0",
		}
		if err := nodes[i].start(reg); err != nil {
			return err
		}
		defer nodes[i].stop()
	}

	infos := make([]cluster.NodeInfo, cfg.Nodes)
	for i, n := range nodes {
		infos[i] = cluster.NodeInfo{
			ID: n.id, Addr: n.addr,
			Rack: fmt.Sprintf("r%d", i),
			Zone: fmt.Sprintf("z%d", i%2),
		}
	}
	cmap, err := cluster.New(infos)
	if err != nil {
		return err
	}
	intents, err := cluster.OpenIntentLog(filepath.Join(root, "intents.log"), reg)
	if err != nil {
		return err
	}
	defer intents.Close()
	gw, err := cluster.NewGateway(cluster.GatewayOptions{
		Map: cmap, K: cfg.K, M: cfg.M,
		StripeSize:  cfg.StripeKiB * 1024,
		Metrics:     reg,
		Seed:        uint64(cfg.Seed),
		WriteQuorum: cfg.Quorum,
		PutBackoff:  5 * time.Millisecond,
		Intents:     intents,
		HTTPClient:  &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	objSize := int64(cfg.ObjectKiB) * 1024
	payload := func(i int) []byte {
		buf := make([]byte, objSize)
		st := uint64(cfg.Seed) + uint64(i)*0x9e3779b97f4a7c15
		for j := range buf {
			st = st*6364136223846793005 + 1442695040888963407
			buf[j] = byte(st >> 56)
		}
		return buf
	}
	objName := func(i int) string { return fmt.Sprintf("repair-obj-%03d", i) }

	// One node down: every put acks at quorum and journals one intent.
	nodes[cfg.Nodes-1].stop()
	for i := 0; i < cfg.Objects; i++ {
		if _, err := gw.PutObject(ctx, objName(i), bytes.NewReader(payload(i)), objSize, node.ClassForeground); err != nil {
			return fmt.Errorf("degraded put %s: %w", objName(i), err)
		}
	}
	logged := len(intents.Pending())

	// The node returns with an empty slice of these objects; adopt the
	// journal and converge.
	if err := nodes[cfg.Nodes-1].start(reg); err != nil {
		return err
	}
	rep := cluster.NewRepairer(gw, nil, reg)
	start := time.Now()
	adopted := rep.AdoptIntents()
	repaired, failed := rep.DrainOnce(ctx)
	convergeSecs := time.Since(start).Seconds()
	if failed > 0 {
		return fmt.Errorf("%d repairs failed", failed)
	}

	enqueued, err := rep.ScanOnce(ctx)
	if err != nil {
		return err
	}
	for i := 0; i < cfg.Objects; i++ {
		var out bytes.Buffer
		if err := gw.GetObject(ctx, objName(i), &out, node.ClassForeground); err != nil {
			return fmt.Errorf("verify %s: %w", objName(i), err)
		}
		if !bytes.Equal(out.Bytes(), payload(i)) {
			return fmt.Errorf("verify %s: payload mismatch", objName(i))
		}
	}

	shardBytes := float64(objSize) / float64(cfg.K) * float64(repaired)
	res := repairResult{
		Config:          cfg,
		DegradedPuts:    int(reg.Counter("cluster_put_degraded_total", "").Value()),
		IntentsLogged:   logged,
		IntentsAdopted:  adopted,
		RepairedShards:  repaired,
		ConvergeMS:      convergeSecs * 1000,
		RepairMBps:      shardBytes / (1 << 20) / convergeSecs,
		IntentsDrained:  len(intents.Pending()) == 0,
		FinalScrubClean: enqueued == 0,
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Printf("repair convergence: %d nodes, RS(%d,%d), quorum %d, %d objects x %d KiB\n",
			cfg.Nodes, cfg.K, cfg.M, cfg.Quorum, cfg.Objects, cfg.ObjectKiB)
		fmt.Printf("  degraded puts     %8d  (intents logged: %d)\n", res.DegradedPuts, res.IntentsLogged)
		fmt.Printf("  intents adopted   %8d\n", res.IntentsAdopted)
		fmt.Printf("  converge          %8.1f ms   (%d shards rebuilt, %.1f MB/s)\n",
			res.ConvergeMS, res.RepairedShards, res.RepairMBps)
		fmt.Printf("  intents drained   %v\n", res.IntentsDrained)
		fmt.Printf("  final scrub clean %v\n", res.FinalScrubClean)
	}
	if !res.IntentsDrained {
		return fmt.Errorf("intents not drained after convergence")
	}
	if !res.FinalScrubClean {
		return fmt.Errorf("cluster did not scrub clean after convergence")
	}
	return nil
}
