package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dialga/internal/cluster"
	"dialga/internal/node"
	"dialga/internal/obs"
)

// clusterConfig shapes the in-process cluster benchmark.
type clusterConfig struct {
	Nodes     int   `json:"nodes"`
	K         int   `json:"k"`
	M         int   `json:"m"`
	Objects   int   `json:"objects"`
	ObjectKiB int   `json:"object_kib"`
	StripeKiB int   `json:"stripe_kib"`
	Kill      int   `json:"kill"`
	Seed      int64 `json:"seed"`
}

// clusterResult is the benchmark's emitted shape (BENCH_cluster.json
// in CI).
type clusterResult struct {
	Config          clusterConfig `json:"config"`
	PutMBps         float64       `json:"put_mbps"`
	GetMBps         float64       `json:"get_mbps"`
	DegradedGetMBps float64       `json:"degraded_get_mbps"`
	RepairedShards  int           `json:"repaired_shards"`
	RepairMS        float64       `json:"repair_ms"`
	FinalScrubClean bool          `json:"final_scrub_clean"`
}

// benchNode is one in-process cluster member: a real shard server on a
// real loopback listener, stoppable and restartable on the same
// address to simulate node loss and replacement.
type benchNode struct {
	id   cluster.NodeID
	dir  string
	addr string
	srv  *http.Server
}

func (n *benchNode) start(reg *obs.Registry) error {
	store, err := node.OpenStore(n.dir, reg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		return err
	}
	if n.addr == "127.0.0.1:0" {
		n.addr = ln.Addr().String()
	}
	n.srv = &http.Server{Handler: node.NewServer(store, nil, reg).Handler()}
	go n.srv.Serve(ln)
	return nil
}

func (n *benchNode) stop() {
	if n.srv != nil {
		n.srv.Close()
		n.srv = nil
	}
}

// runCluster stands up an in-process cluster (real HTTP over
// loopback), pushes objects through the gateway, kills nodes, reads
// degraded, replaces the dead nodes with empty stores, and repairs
// back to full redundancy — the full lifecycle, timed per phase.
func runCluster(quick, asJSON bool) error {
	cfg := clusterConfig{
		Nodes: 6, K: 4, M: 2,
		Objects: 8, ObjectKiB: 2048, StripeKiB: 256,
		Kill: 2, Seed: 42,
	}
	if quick {
		cfg.Objects, cfg.ObjectKiB, cfg.StripeKiB = 3, 256, 64
	}

	root, err := os.MkdirTemp("", "dialga-cluster-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	reg := obs.NewRegistry()
	nodes := make([]*benchNode, cfg.Nodes)
	for i := range nodes {
		nodes[i] = &benchNode{
			id:   cluster.NodeID(fmt.Sprintf("n%d", i)),
			dir:  filepath.Join(root, fmt.Sprintf("n%d", i)),
			addr: "127.0.0.1:0",
		}
		if err := nodes[i].start(reg); err != nil {
			return err
		}
		defer nodes[i].stop()
	}

	infos := make([]cluster.NodeInfo, cfg.Nodes)
	for i, n := range nodes {
		infos[i] = cluster.NodeInfo{
			ID: n.id, Addr: n.addr,
			Rack: fmt.Sprintf("r%d", i),
			Zone: fmt.Sprintf("z%d", i%2),
		}
	}
	cmap, err := cluster.New(infos)
	if err != nil {
		return err
	}
	gw, err := cluster.NewGateway(cluster.GatewayOptions{
		Map: cmap, K: cfg.K, M: cfg.M,
		StripeSize: cfg.StripeKiB * 1024,
		HedgeAfter: 20 * time.Millisecond,
		Metrics:    reg,
		Seed:       uint64(cfg.Seed),
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	objSize := int64(cfg.ObjectKiB) * 1024
	payload := func(i int) []byte {
		buf := make([]byte, objSize)
		st := uint64(cfg.Seed) + uint64(i)*0x9e3779b97f4a7c15
		for j := range buf {
			st = st*6364136223846793005 + 1442695040888963407
			buf[j] = byte(st >> 56)
		}
		return buf
	}
	objName := func(i int) string { return fmt.Sprintf("bench-obj-%03d", i) }

	// Phase 1: foreground puts.
	start := time.Now()
	for i := 0; i < cfg.Objects; i++ {
		body := payload(i)
		if _, err := gw.PutObject(ctx, objName(i), bytes.NewReader(body), objSize, node.ClassForeground); err != nil {
			return fmt.Errorf("put %s: %w", objName(i), err)
		}
	}
	putSecs := time.Since(start).Seconds()

	getAll := func() (float64, error) {
		start := time.Now()
		for i := 0; i < cfg.Objects; i++ {
			var out bytes.Buffer
			if err := gw.GetObject(ctx, objName(i), &out, node.ClassForeground); err != nil {
				return 0, fmt.Errorf("get %s: %w", objName(i), err)
			}
			if !bytes.Equal(out.Bytes(), payload(i)) {
				return 0, fmt.Errorf("get %s: payload mismatch", objName(i))
			}
		}
		return time.Since(start).Seconds(), nil
	}

	// Phase 2: healthy gets.
	getSecs, err := getAll()
	if err != nil {
		return err
	}

	// Phase 3: kill nodes and read degraded. The dead nodes' shards
	// are skipped at open; decode reconstructs from the survivors.
	for i := 0; i < cfg.Kill; i++ {
		nodes[i].stop()
	}
	degradedSecs, err := getAll()
	if err != nil {
		return fmt.Errorf("degraded read with %d nodes down: %w", cfg.Kill, err)
	}

	// Phase 4: replace the dead nodes with empty stores on the same
	// addresses and let the repair queue rebuild their shards.
	for i := 0; i < cfg.Kill; i++ {
		nodes[i].dir = nodes[i].dir + "-replacement"
		if err := nodes[i].start(reg); err != nil {
			return err
		}
	}
	rep := cluster.NewRepairer(gw, nil, reg)
	start = time.Now()
	if _, err := rep.ScanOnce(ctx); err != nil {
		return err
	}
	repaired, failed := rep.DrainOnce(ctx)
	repairSecs := time.Since(start).Seconds()
	if failed > 0 {
		return fmt.Errorf("%d repairs failed", failed)
	}

	// Phase 5: verify the cluster scrubs clean again.
	enqueued, err := rep.ScanOnce(ctx)
	if err != nil {
		return err
	}

	mb := float64(objSize) * float64(cfg.Objects) / (1 << 20)
	res := clusterResult{
		Config:          cfg,
		PutMBps:         mb / putSecs,
		GetMBps:         mb / getSecs,
		DegradedGetMBps: mb / degradedSecs,
		RepairedShards:  repaired,
		RepairMS:        repairSecs * 1000,
		FinalScrubClean: enqueued == 0,
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		if !res.FinalScrubClean {
			return fmt.Errorf("cluster did not scrub clean after repair")
		}
		return nil
	}
	fmt.Printf("cluster: %d nodes, RS(%d,%d), %d objects x %d KiB\n",
		cfg.Nodes, cfg.K, cfg.M, cfg.Objects, cfg.ObjectKiB)
	fmt.Printf("  put               %8.1f MB/s\n", res.PutMBps)
	fmt.Printf("  get               %8.1f MB/s\n", res.GetMBps)
	fmt.Printf("  degraded get      %8.1f MB/s  (%d of %d nodes down)\n", res.DegradedGetMBps, cfg.Kill, cfg.Nodes)
	fmt.Printf("  repair            %8.1f ms   (%d shards rebuilt)\n", res.RepairMS, res.RepairedShards)
	fmt.Printf("  final scrub clean %v\n", res.FinalScrubClean)
	if !res.FinalScrubClean {
		return fmt.Errorf("cluster did not scrub clean after repair")
	}
	return nil
}
