package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dialga/internal/cluster"
	"dialga/internal/node"
	"dialga/internal/obs"
)

// rebalanceConfig shapes the membership-change benchmark.
type rebalanceConfig struct {
	Nodes     int   `json:"nodes"`
	K         int   `json:"k"`
	M         int   `json:"m"`
	Objects   int   `json:"objects"`
	ObjectKiB int   `json:"object_kib"`
	StripeKiB int   `json:"stripe_kib"`
	Seed      int64 `json:"seed"`
}

// rebalanceResult is the benchmark's emitted shape
// (BENCH_rebalance.json in CI): how fast a cluster converges onto a
// new map after one node joins and one node (a whole rack) leaves.
type rebalanceResult struct {
	Config         rebalanceConfig `json:"config"`
	Moves          int             `json:"moves"`
	MigratedShards int             `json:"migrated_shards"`
	MigrateMBps    float64         `json:"migrate_mbps"`
	ConvergeMS     float64         `json:"converge_ms"`
	OldNodeEmptied bool            `json:"old_node_emptied"`
	IntentsDrained bool            `json:"intents_drained"`
	FullShardGets  int             `json:"full_shard_gets"`
	RangeShardGets int             `json:"range_shard_gets"`
}

// runRebalanceBench stands up an in-process cluster, fills it with
// objects, swaps in a new map (one node added, one node removed), and
// measures how long the placement-diff rebalance takes to migrate
// every displaced shard to its new home — then verifies every object
// byte-exact and pins the Range-read efficiency claim (a small range
// opens strictly fewer shards than a full read).
func runRebalanceBench(quick, asJSON bool) error {
	cfg := rebalanceConfig{
		Nodes: 6, K: 4, M: 2,
		Objects: 12, ObjectKiB: 1024, StripeKiB: 256,
		Seed: 42,
	}
	if quick {
		cfg.Objects, cfg.ObjectKiB, cfg.StripeKiB = 4, 128, 64
	}

	root, err := os.MkdirTemp("", "dialga-rebalance-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// cfg.Nodes serving members plus the node that will join.
	reg := obs.NewRegistry()
	nodes := make([]*benchNode, cfg.Nodes+1)
	for i := range nodes {
		nodes[i] = &benchNode{
			id:   cluster.NodeID(fmt.Sprintf("n%d", i)),
			dir:  filepath.Join(root, fmt.Sprintf("n%d", i)),
			addr: "127.0.0.1:0",
		}
		if err := nodes[i].start(reg); err != nil {
			return err
		}
		defer nodes[i].stop()
	}
	info := func(n *benchNode, i int) cluster.NodeInfo {
		return cluster.NodeInfo{
			ID: n.id, Addr: n.addr,
			Rack: fmt.Sprintf("r%d", i),
			Zone: fmt.Sprintf("z%d", i%2),
		}
	}
	infos := make([]cluster.NodeInfo, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		infos[i] = info(nodes[i], i)
	}
	oldMap, err := cluster.New(infos)
	if err != nil {
		return err
	}

	intents, err := cluster.OpenIntentLog(filepath.Join(root, "intents.log"), reg)
	if err != nil {
		return err
	}
	defer intents.Close()
	gw, err := cluster.NewGateway(cluster.GatewayOptions{
		Map: oldMap, K: cfg.K, M: cfg.M,
		StripeSize: cfg.StripeKiB * 1024,
		Metrics:    reg,
		Seed:       uint64(cfg.Seed),
		Intents:    intents,
		HTTPClient: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	objSize := int64(cfg.ObjectKiB) * 1024
	payload := func(i int) []byte {
		buf := make([]byte, objSize)
		st := uint64(cfg.Seed) + uint64(i)*0x9e3779b97f4a7c15
		for j := range buf {
			st = st*6364136223846793005 + 1442695040888963407
			buf[j] = byte(st >> 56)
		}
		return buf
	}
	objName := func(i int) string { return fmt.Sprintf("rebalance-obj-%03d", i) }
	for i := 0; i < cfg.Objects; i++ {
		if _, err := gw.PutObject(ctx, objName(i), bytes.NewReader(payload(i)), objSize, node.ClassForeground); err != nil {
			return fmt.Errorf("put %s: %w", objName(i), err)
		}
	}

	// The membership change: node 1 (rack r1) leaves, the spare node
	// joins in a new rack. The swap itself moves no bytes.
	newInfos := make([]cluster.NodeInfo, 0, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		if i == 1 {
			continue
		}
		newInfos = append(newInfos, infos[i])
	}
	newInfos = append(newInfos, info(nodes[cfg.Nodes], cfg.Nodes))
	newMap, err := cluster.New(newInfos)
	if err != nil {
		return err
	}
	if err := gw.UpdateMap(newMap.WithEpoch(oldMap.Epoch() + 1)); err != nil {
		return err
	}

	rep := cluster.NewRepairer(gw, nil, reg)
	start := time.Now()
	moves, err := rep.Rebalance(ctx, oldMap)
	if err != nil {
		return fmt.Errorf("rebalance: %w", err)
	}
	migrated, failed := rep.DrainOnce(ctx)
	convergeSecs := time.Since(start).Seconds()
	if failed > 0 {
		return fmt.Errorf("%d migrations failed", failed)
	}

	// Every object must read byte-exact on the new map.
	for i := 0; i < cfg.Objects; i++ {
		var out bytes.Buffer
		if err := gw.GetObject(ctx, objName(i), &out, node.ClassForeground); err != nil {
			return fmt.Errorf("verify %s: %w", objName(i), err)
		}
		if !bytes.Equal(out.Bytes(), payload(i)) {
			return fmt.Errorf("verify %s: payload mismatch", objName(i))
		}
	}
	left, err := node.NewClient(nodes[1].addr).Objects(ctx)
	if err != nil {
		return fmt.Errorf("listing the removed node: %w", err)
	}

	// Range-read efficiency on the rebalanced cluster: one stripe's
	// window against the whole object, counted in shard fetches.
	shardGets := func() uint64 {
		return reg.Counter("node_requests_total", "",
			obs.Label{Key: "route", Value: "shard_get"},
			obs.Label{Key: "class", Value: "foreground"}).Value()
	}
	before := shardGets()
	var full bytes.Buffer
	if err := gw.GetObject(ctx, objName(0), &full, node.ClassForeground); err != nil {
		return err
	}
	fullGets := int(shardGets() - before)
	before = shardGets()
	var part bytes.Buffer
	if err := gw.GetObjectRange(ctx, objName(0), &part, 1024, 4096, node.ClassForeground); err != nil {
		return fmt.Errorf("range read: %w", err)
	}
	rangeGets := int(shardGets() - before)
	if !bytes.Equal(part.Bytes(), full.Bytes()[1024:1024+4096]) {
		return fmt.Errorf("range read bytes differ from the full read's slice")
	}
	if rangeGets >= fullGets {
		return fmt.Errorf("range read opened %d shards, full read %d: want strictly fewer", rangeGets, fullGets)
	}

	shardBytes := float64(objSize) / float64(cfg.K) * float64(migrated)
	res := rebalanceResult{
		Config:         cfg,
		Moves:          moves,
		MigratedShards: migrated,
		MigrateMBps:    shardBytes / (1 << 20) / convergeSecs,
		ConvergeMS:     convergeSecs * 1000,
		OldNodeEmptied: len(left) == 0,
		IntentsDrained: len(intents.Pending()) == 0,
		FullShardGets:  fullGets,
		RangeShardGets: rangeGets,
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Printf("rebalance convergence: %d+1 nodes, RS(%d,%d), %d objects x %d KiB, node added + rack removed\n",
			cfg.Nodes, cfg.K, cfg.M, cfg.Objects, cfg.ObjectKiB)
		fmt.Printf("  moves enqueued    %8d\n", res.Moves)
		fmt.Printf("  converge          %8.1f ms   (%d shards migrated, %.1f MB/s)\n",
			res.ConvergeMS, res.MigratedShards, res.MigrateMBps)
		fmt.Printf("  old node emptied  %v\n", res.OldNodeEmptied)
		fmt.Printf("  intents drained   %v\n", res.IntentsDrained)
		fmt.Printf("  shard fetches     full read %d, range read %d\n", res.FullShardGets, res.RangeShardGets)
	}
	if !res.OldNodeEmptied {
		return fmt.Errorf("removed node still holds %d objects after convergence", len(left))
	}
	if !res.IntentsDrained {
		return fmt.Errorf("intents not drained after convergence")
	}
	return nil
}
