// Command dialga-bench regenerates the paper's evaluation figures on
// the simulated testbed.
//
//	dialga-bench -fig fig10          # one figure, text table
//	dialga-bench -all                # every figure
//	dialga-bench -fig fig13 -csv     # CSV for plotting
//	dialga-bench -all -quick         # fast smoke run (shapes untrusted)
//	dialga-bench -straggler          # hedged vs plain decode under one slow shard
//	dialga-bench -straggler -json    # same, machine-readable
//	dialga-bench -adaptive           # adaptive vs static decode, paced fleet +
//	                                 # bursty straggler, controller history
//	dialga-bench -adaptive -json     # same, machine-readable (BENCH_adaptive.json)
//	dialga-bench -encode             # fused vs two-pass encode sweep
//	dialga-bench -encode -fused=off  # legacy two-pass path only (escape hatch)
//	dialga-bench -encode -json -gate ci/bench_fused_baseline.json
//	                                 # machine-readable + regression gate
//	dialga-bench -cluster            # in-process 6-node cluster lifecycle:
//	                                 # put/get, kill 2 nodes, degraded get, repair
//	dialga-bench -repair             # quorum-degraded puts with a node down,
//	                                 # then intent adoption + repair convergence
//	dialga-bench -repair -json       # same, machine-readable (BENCH_repair.json)
//	dialga-bench -rebalance          # map swap (node added, rack removed), then
//	                                 # bounded migration convergence + range reads
//	dialga-bench -rebalance -json    # same, machine-readable (BENCH_rebalance.json)
//	dialga-bench -serve :8080        # loop the straggler workload and expose
//	                                 # /metrics, /debug/trace, /debug/pprof
//
// Figure ids follow the paper: fig03..fig07 are the §3 observations,
// fig10..fig19 the §5 evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dialga/internal/harness"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure id to run (fig03..fig19)")
		all       = flag.Bool("all", false, "run every figure")
		csv       = flag.Bool("csv", false, "emit CSV instead of a text table")
		quick     = flag.Bool("quick", false, "small working sets and sweeps (fast, shapes untrusted)")
		repeats   = flag.Int("repeats", 1, "average multi-threaded points over N layout seeds")
		verbose   = flag.Bool("v", false, "log each run")
		list      = flag.Bool("list", false, "list figure ids")
		straggler = flag.Bool("straggler", false, "benchmark hedged vs plain decode with one slow shard")
		adaptiveB = flag.Bool("adaptive", false, "benchmark adaptive vs static decode under a paced fleet with a bursty straggler")
		encodeB   = flag.Bool("encode", false, "benchmark fused vs two-pass encode across k and checksum settings")
		fusedMode = flag.String("fused", "both", "with -encode: sweep the fused path (on), the legacy two-pass path (off), or both")
		gate      = flag.String("gate", "", "with -encode: baseline BENCH_fused.json; fail if the RS(10,4) fused speedup regressed >10%")
		clusterB  = flag.Bool("cluster", false, "benchmark an in-process 6-node cluster: put/get, kill, degraded get, repair")
		repairB   = flag.Bool("repair", false, "benchmark quorum-degraded puts and repair convergence after the missing node returns")
		rebalB    = flag.Bool("rebalance", false, "benchmark cluster-map-swap rebalancing: migration convergence and range-read fan-out")
		asJSON    = flag.Bool("json", false, "with -straggler/-cluster/-repair/-rebalance/-encode: emit JSON instead of text")
		serve     = flag.String("serve", "", "loop the straggler workload and serve /metrics, /debug/trace and pprof on this address (e.g. :8080)")
	)
	flag.Parse()

	if *serve != "" {
		if err := runServe(*serve, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *encodeB {
		if err := runEncodeBench(*quick, *asJSON, *fusedMode, *gate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *straggler {
		if err := runStraggler(*quick, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *adaptiveB {
		if err := runAdaptive(*quick, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *clusterB {
		if err := runCluster(*quick, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *repairB {
		if err := runRepairBench(*quick, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *rebalB {
		if err := runRebalanceBench(*quick, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println(strings.Join(harness.FigureIDs, "\n"))
		return
	}
	r := &harness.Runner{Quick: *quick, Repeats: *repeats}
	if *verbose {
		r.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	emit := func(f *harness.Figure) {
		if *csv {
			fmt.Print(f.CSV())
			return
		}
		fmt.Println(f.Table())
		if lo, hi, ok := f.ImprovementRange("DIALGA"); ok {
			fmt.Printf("  DIALGA vs best other: %+.1f%% .. %+.1f%%\n\n", lo, hi)
		}
	}

	switch {
	case *all:
		for _, id := range harness.FigureIDs {
			f, err := r.ByID(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
				os.Exit(1)
			}
			emit(f)
		}
	case *fig != "":
		f, err := r.ByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(f)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
