package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"dialga/internal/rs"
	"dialga/internal/stream"
)

// encodeConfig is the fixed geometry of the -encode sweep. Every row
// encodes the same seeded payload through the streaming encoder with a
// single worker, so the fused/two-pass ratio measures the codec sweep
// itself rather than scheduling noise.
type encodeConfig struct {
	Ks         []int `json:"ks"`
	M          int   `json:"m"`
	ShardSize  int   `json:"shard_size"`
	PayloadMiB int   `json:"payload_mib"`
	Rounds     int   `json:"rounds"` // best-of-N wall-clock rounds per row
	Workers    int   `json:"workers"`
	Seed       int64 `json:"seed"`
	Quick      bool  `json:"quick"`
}

// encodeRow is one (k, checksum, path) cell of the sweep.
type encodeRow struct {
	K        int     `json:"k"`
	M        int     `json:"m"`
	Checksum string  `json:"checksum"` // "crc32c" | "none"
	Fused    bool    `json:"fused"`
	MBPerSec float64 `json:"mb_per_s"`
	MsPerOp  float64 `json:"ms_per_op"`
}

// encodeSpeedup is the headline derived metric: fused over two-pass
// throughput at one geometry, checksum on. The CI gate compares the
// RS(10,4) entry against the committed baseline.
type encodeSpeedup struct {
	K     int     `json:"k"`
	M     int     `json:"m"`
	Ratio float64 `json:"fused_over_twopass"`
}

type encodeReport struct {
	Config   encodeConfig    `json:"config"`
	Rows     []encodeRow     `json:"rows"`
	Speedups []encodeSpeedup `json:"speedups"`
}

// seededPayload fills a deterministic pseudo-random buffer; content is
// irrelevant to timing but keeps runs byte-for-byte comparable.
func seededPayload(n int, seed int64) []byte {
	p := make([]byte, n)
	st := uint64(seed)
	for i := range p {
		st = st*6364136223846793005 + 1442695040888963407
		p[i] = byte(st >> 56)
	}
	return p
}

// benchEncode times one encoder configuration over the payload and
// returns the best-of-rounds throughput.
func benchEncode(cfg encodeConfig, payload []byte, k int, sum stream.Checksum, disableFused bool) (encodeRow, error) {
	code, err := rs.New(k, cfg.M)
	if err != nil {
		return encodeRow{}, err
	}
	opts := stream.Options{
		Codec:        code,
		StripeSize:   k * cfg.ShardSize,
		Workers:      cfg.Workers,
		Checksum:     sum,
		DisableFused: disableFused,
	}
	enc, err := stream.NewEncoder(opts)
	if err != nil {
		return encodeRow{}, err
	}
	writers := make([]io.Writer, enc.Shards())
	for i := range writers {
		writers[i] = io.Discard
	}
	best := time.Duration(1<<62 - 1)
	for r := 0; r < cfg.Rounds; r++ {
		start := time.Now()
		if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
			return encodeRow{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	name := "crc32c"
	if sum == stream.ChecksumNone {
		name = "none"
	}
	return encodeRow{
		K: k, M: cfg.M, Checksum: name, Fused: !disableFused && enc.Fused(),
		MBPerSec: float64(len(payload)) / (1 << 20) / best.Seconds(),
		MsPerOp:  float64(best) / float64(time.Millisecond),
	}, nil
}

// runEncodeBench sweeps k in {4,10,16,24} x checksum {crc32c,none} x
// {fused, two-pass}, emitting the BENCH_fused.json report. fusedMode
// narrows the sweep: "on" benches only the fused path, "off" only the
// legacy two-pass path (the escape hatch), "both" (default) benches
// both and derives fused/two-pass speedups. gatePath, when non-empty,
// compares the RS(10,4) checksum-on speedup against a committed
// baseline report and fails if it regressed by more than 10%.
func runEncodeBench(quick, asJSON bool, fusedMode, gatePath string) error {
	// 1 MiB shards put each stripe (4-24 MiB) past the LLC, which is
	// where eliminating the second sweep pays — with cache-resident
	// stripes the hardware-CRC trailer pass is nearly free and fused
	// vs two-pass measures as noise.
	cfg := encodeConfig{
		Ks: []int{4, 10, 16, 24}, M: 4, ShardSize: 1 << 20,
		PayloadMiB: 64, Rounds: 3, Workers: 1, Seed: 42, Quick: quick,
	}
	if quick {
		cfg.PayloadMiB, cfg.Rounds, cfg.ShardSize = 16, 2, 256<<10
	}

	var paths []bool // disableFused values to sweep
	switch fusedMode {
	case "both":
		paths = []bool{true, false} // two-pass first: baseline before candidate
	case "on":
		paths = []bool{false}
	case "off":
		paths = []bool{true}
	default:
		return fmt.Errorf("-fused=%q: want on, off or both", fusedMode)
	}

	report := encodeReport{Config: cfg}
	for _, k := range cfg.Ks {
		// Same byte count per row regardless of k: whole stripes only,
		// so no row pays a ragged-tail stripe the others don't.
		stripe := k * cfg.ShardSize
		n := (cfg.PayloadMiB << 20) / stripe * stripe
		payload := seededPayload(n, cfg.Seed)
		for _, sum := range []stream.Checksum{stream.ChecksumCRC32C, stream.ChecksumNone} {
			for _, disable := range paths {
				if sum == stream.ChecksumNone && !disable {
					// No trailers: the fused sweep never engages, the
					// row would duplicate the two-pass one.
					continue
				}
				row, err := benchEncode(cfg, payload, k, sum, disable)
				if err != nil {
					return fmt.Errorf("encode bench k=%d: %w", k, err)
				}
				report.Rows = append(report.Rows, row)
			}
		}
	}

	if fusedMode == "both" {
		byKey := map[string]float64{}
		for _, r := range report.Rows {
			if r.Checksum == "crc32c" {
				byKey[fmt.Sprintf("%d/%v", r.K, r.Fused)] = r.MBPerSec
			}
		}
		for _, k := range cfg.Ks {
			two, fused := byKey[fmt.Sprintf("%d/false", k)], byKey[fmt.Sprintf("%d/true", k)]
			if two > 0 && fused > 0 {
				report.Speedups = append(report.Speedups, encodeSpeedup{K: k, M: cfg.M, Ratio: fused / two})
			}
		}
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		fmt.Printf("encode sweep: m=%d shard=%dKiB payload=%dMiB workers=%d best-of-%d\n",
			cfg.M, cfg.ShardSize>>10, cfg.PayloadMiB, cfg.Workers, cfg.Rounds)
		fmt.Printf("  %-10s %-8s %-8s %12s %10s\n", "geometry", "checksum", "path", "MB/s", "ms/op")
		for _, r := range report.Rows {
			path := "two-pass"
			if r.Fused {
				path = "fused"
			}
			fmt.Printf("  RS(%d,%d)   %-8s %-8s %12.0f %10.1f\n", r.K, r.M, r.Checksum, path, r.MBPerSec, r.MsPerOp)
		}
		for _, s := range report.Speedups {
			fmt.Printf("  RS(%d,%d) crc32c fused/two-pass: %.2fx\n", s.K, s.M, s.Ratio)
		}
	}

	if gatePath != "" {
		return gateEncode(report, gatePath)
	}
	return nil
}

// gateEncode fails when the RS(10,4) checksum-on fused/two-pass
// speedup regressed more than 10% against the committed baseline
// report. Gating on the ratio rather than absolute MB/s keeps the
// check meaningful on shared CI runners with wildly varying hardware.
func gateEncode(cur encodeReport, baselinePath string) error {
	const gateK, tolerance = 10, 0.90
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("gate: read baseline: %w", err)
	}
	var base encodeReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("gate: parse baseline: %w", err)
	}
	find := func(r encodeReport) (float64, bool) {
		for _, s := range r.Speedups {
			if s.K == gateK {
				return s.Ratio, true
			}
		}
		return 0, false
	}
	want, ok := find(base)
	if !ok {
		return fmt.Errorf("gate: baseline has no RS(%d,*) speedup entry", gateK)
	}
	got, ok := find(cur)
	if !ok {
		return fmt.Errorf("gate: current run has no RS(%d,*) speedup (need -fused=both)", gateK)
	}
	fmt.Fprintf(os.Stderr, "gate: RS(%d,4) fused/two-pass %.2fx vs baseline %.2fx (floor %.2fx)\n",
		gateK, got, want, want*tolerance)
	if got < want*tolerance {
		return fmt.Errorf("gate: fused encode speedup regressed: %.2fx < %.2fx (baseline %.2fx - 10%%)",
			got, want*tolerance, want)
	}
	return nil
}
