package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"dialga/internal/adapt"
	"dialga/internal/fault"
	"dialga/internal/obs"
	"dialga/internal/rs"
	"dialga/internal/stream"
)

// adaptiveConfig is the seeded geometry of the -adaptive benchmark: a
// fleet where every shard pays a device-like per-block delay and one
// shard periodically bursts an order of magnitude slower, decoded
// twice — static knobs, then with the adapt controller closing the
// paper's feedback loop at stripe boundaries.
type adaptiveConfig struct {
	K           int   `json:"k"`
	M           int   `json:"m"`
	ShardSize   int   `json:"shard_size"`
	Stripes     int   `json:"stripes"`
	SlowShard   int   `json:"slow_shard"`
	BaseMicros  int64 `json:"base_micros"`  // per-block delay mean, shard 0; +5% per shard
	SlowMicros  int64 `json:"slow_micros"`  // straggler extra delay mean during a burst
	BurstBlocks int   `json:"burst_blocks"` // slow blocks per burst
	BurstEvery  int   `json:"burst_every"`  // stripes between burst starts
	Seed        int64 `json:"seed"`
}

// adaptiveRun is one decode pass over the same shard set.
type adaptiveRun struct {
	Adaptive    bool    `json:"adaptive"`
	TotalMS     float64 `json:"total_ms"`
	P50StripeUS float64 `json:"p50_stripe_us"`
	P99StripeUS float64 `json:"p99_stripe_us"`
	HedgedReads uint64  `json:"hedged_reads"`
	HedgeWins   uint64  `json:"hedge_wins"`
	RaHits      uint64  `json:"readahead_hits"`
	Adjustments uint64  `json:"adjustments"`
	FinalKnobs  string  `json:"final_knobs,omitempty"`
}

type adaptiveReport struct {
	Config  adaptiveConfig `json:"config"`
	Runs    []adaptiveRun  `json:"runs"`
	History []string       `json:"history"` // adaptive run's adjusting ticks
}

// runAdaptive encodes a seeded payload once, then decodes it twice —
// static knobs, then adaptive — against a paced fleet with a bursty
// straggler, reporting wall time, stripe-latency percentiles, and the
// controller's decisions.
func runAdaptive(quick, asJSON bool) error {
	cfg := adaptiveConfig{
		K: 6, M: 2, ShardSize: 1024, Stripes: 160,
		SlowShard: 3, BaseMicros: 2000, SlowMicros: 12000,
		BurstBlocks: 4, BurstEvery: 32, Seed: 42,
	}
	if quick {
		cfg.Stripes, cfg.BaseMicros, cfg.SlowMicros = 64, 1000, 8000
		cfg.BurstEvery = 16
	}

	code, err := rs.New(cfg.K, cfg.M)
	if err != nil {
		return err
	}
	opts := stream.Options{
		Codec:      code,
		StripeSize: cfg.K * cfg.ShardSize,
		Workers:    2,
		Window:     4,
		HedgeAfter: time.Millisecond,
		Seed:       uint64(cfg.Seed),
		// The A/B isolates the readahead/deadline knobs; the breaker
		// would sideline the straggler for both runs and wash them out.
		BreakerThreshold: -1,
	}
	payload := make([]byte, cfg.Stripes*cfg.K*cfg.ShardSize)
	st := uint64(cfg.Seed)
	for i := range payload {
		st = st*6364136223846793005 + 1442695040888963407
		payload[i] = byte(st >> 56)
	}
	enc, err := stream.NewEncoder(opts)
	if err != nil {
		return err
	}
	shardBufs := make([]bytes.Buffer, cfg.K+cfg.M)
	writers := make([]io.Writer, cfg.K+cfg.M)
	for i := range shardBufs {
		writers[i] = &shardBufs[i]
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		return err
	}

	// The decoder's framed block length converts stripe indices to
	// shard-stream byte offsets for the Span-bounded burst ops.
	probe, err := stream.NewDecoder(opts)
	if err != nil {
		return err
	}
	blockSize := probe.BlockSize()

	readersFor := func() []io.Reader {
		readers := make([]io.Reader, cfg.K+cfg.M)
		for i := range shardBufs {
			// Baseline device pacing; distinct per-shard means keep the
			// eight seeded delay sequences distinct.
			plan := fault.Plan{Ops: []fault.Op{{
				Kind: fault.Slow, Len: cfg.BaseMicros + cfg.BaseMicros/20*int64(i),
			}}}
			if i == cfg.SlowShard {
				for s := cfg.BurstEvery; s+cfg.BurstBlocks <= cfg.Stripes; s += cfg.BurstEvery {
					plan.Ops = append(plan.Ops, fault.Op{
						Kind: fault.Slow,
						Off:  int64(s * blockSize),
						Len:  cfg.SlowMicros,
						Span: int64(cfg.BurstBlocks * blockSize),
					})
				}
			}
			readers[i] = fault.NewReader(bytes.NewReader(shardBufs[i].Bytes()), plan)
		}
		return readers
	}

	var history []string
	decode := func(adaptive bool) (adaptiveRun, error) {
		reg := obs.NewRegistry()
		tr := obs.NewTracer(64)
		o := opts
		o.Metrics = reg
		o.Trace = tr
		var ctrl *adapt.Controller
		if adaptive {
			ctrl, err = adapt.New(adapt.Options{
				Source: adapt.NewRegistrySource(reg, tr, cfg.K+cfg.M),
				Policy: adapt.Config{UselessFloor: 0.5, MinSpeculative: 8},
				Initial: adapt.Knobs{
					HedgeAfter:   o.HedgeAfter,
					DeadlineMult: 3.0,
					Readahead:    0,
					Workers:      o.Workers,
					Window:       o.Window,
				},
				EveryPulls: 32,
				Metrics:    reg,
				Trace:      tr,
			})
			if err != nil {
				return adaptiveRun{}, err
			}
			o.Tuner = ctrl
		}
		dec, err := stream.NewDecoder(o)
		if err != nil {
			return adaptiveRun{}, err
		}
		timer := &stripeTimer{w: io.Discard, stripeSize: cfg.K * cfg.ShardSize}
		start := time.Now()
		if err := dec.Decode(context.Background(), readersFor(), timer, int64(len(payload))); err != nil {
			return adaptiveRun{}, err
		}
		total := time.Since(start)
		s := dec.Stats()
		run := adaptiveRun{
			Adaptive:    adaptive,
			TotalMS:     float64(total) / float64(time.Millisecond),
			P50StripeUS: float64(percentile(timer.intervals, 0.50)) / float64(time.Microsecond),
			P99StripeUS: float64(percentile(timer.intervals, 0.99)) / float64(time.Microsecond),
			HedgedReads: s.HedgedReads,
			HedgeWins:   s.HedgeWins,
			RaHits:      reg.Counter("shardio_readahead_hits_total", "").Value(),
			Adjustments: reg.Counter("adapt_adjustments_total", "").Value(),
		}
		if ctrl != nil {
			run.FinalKnobs = ctrl.State().Load().String()
			for _, d := range ctrl.History() {
				history = append(history, fmt.Sprintf("tick %d %s -> %s", d.Tick, d.Reason, d.Knobs))
			}
		}
		return run, nil
	}

	report := adaptiveReport{Config: cfg, History: []string{}}
	for _, adaptive := range []bool{false, true} {
		run, err := decode(adaptive)
		if err != nil {
			return fmt.Errorf("adaptive decode (adaptive=%v): %w", adaptive, err)
		}
		report.Runs = append(report.Runs, run)
	}
	report.History = history

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Printf("adaptive decode: RS(%d,%d) shard=%dB stripes=%d, base ~%dus/read, shard %d bursts ~%dus x%d every %d stripes (seed %d)\n",
		cfg.K, cfg.M, cfg.ShardSize, cfg.Stripes, cfg.BaseMicros,
		cfg.SlowShard, cfg.SlowMicros, cfg.BurstBlocks, cfg.BurstEvery, cfg.Seed)
	fmt.Printf("  %-8s %12s %12s %10s %8s %6s %8s %6s\n",
		"mode", "p50/stripe", "p99/stripe", "total", "hedged", "wins", "rahits", "adj")
	for _, r := range report.Runs {
		mode := "static"
		if r.Adaptive {
			mode = "adaptive"
		}
		fmt.Printf("  %-8s %10.0fus %10.0fus %8.1fms %8d %6d %8d %6d\n",
			mode, r.P50StripeUS, r.P99StripeUS, r.TotalMS, r.HedgedReads, r.HedgeWins, r.RaHits, r.Adjustments)
	}
	for _, h := range history {
		fmt.Printf("  %s\n", h)
	}
	if len(report.Runs) == 2 {
		s, a := report.Runs[0], report.Runs[1]
		if s.TotalMS > 0 {
			fmt.Printf("  adaptive vs static: %+.1f%% total, %+.1f%% p99\n",
				(a.TotalMS-s.TotalMS)/s.TotalMS*100, (a.P99StripeUS-s.P99StripeUS)/s.P99StripeUS*100)
		}
	}
	return nil
}
