package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"dialga/internal/fault"
	"dialga/internal/rs"
	"dialga/internal/stream"
)

// stragglerConfig is the fixed, seeded geometry of the -straggler
// benchmark: one data shard pays a recurring seeded delay on every
// block read while the rest of the fleet serves from memory.
type stragglerConfig struct {
	K          int   `json:"k"`
	M          int   `json:"m"`
	ShardSize  int   `json:"shard_size"`
	Stripes    int   `json:"stripes"`
	SlowShard  int   `json:"slow_shard"`
	SlowMicros int64 `json:"slow_micros"` // mean injected delay per read; floor is half
	Seed       int64 `json:"seed"`
}

// stragglerRun is one decode pass over the same shard set.
type stragglerRun struct {
	Hedged       bool    `json:"hedged"`
	P50StripeUS  float64 `json:"p50_stripe_us"`
	P99StripeUS  float64 `json:"p99_stripe_us"`
	TotalMS      float64 `json:"total_ms"`
	HedgedReads  uint64  `json:"hedged_reads"`
	HedgeWins    uint64  `json:"hedge_wins"`
	BreakerTrips uint64  `json:"breaker_trips"`
	Retries      uint64  `json:"retries"`
}

type stragglerReport struct {
	Config stragglerConfig `json:"config"`
	Runs   []stragglerRun  `json:"runs"`
}

// stripeTimer is an output writer that timestamps every stripe
// boundary, yielding the per-stripe delivery-latency distribution the
// tail percentiles are computed from.
type stripeTimer struct {
	w          io.Writer
	stripeSize int
	n          int
	last       time.Time
	intervals  []time.Duration
}

func (s *stripeTimer) Write(p []byte) (int, error) {
	if s.last.IsZero() {
		s.last = time.Now()
	}
	n, err := s.w.Write(p)
	s.n += n
	for s.n >= s.stripeSize {
		s.n -= s.stripeSize
		now := time.Now()
		s.intervals = append(s.intervals, now.Sub(s.last))
		s.last = now
	}
	return n, err
}

func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runStraggler encodes a seeded payload once, then decodes it twice —
// hedging off, hedging on — against a fleet with one straggling shard,
// reporting p50/p99 per-stripe latency and the straggler counters for
// each pass.
func runStraggler(quick, asJSON bool) error {
	cfg := stragglerConfig{
		K: 4, M: 2, ShardSize: 4096, Stripes: 96,
		SlowShard: 1, SlowMicros: 3000, Seed: 42,
	}
	if quick {
		cfg.Stripes, cfg.SlowMicros = 24, 2000
	}

	code, err := rs.New(cfg.K, cfg.M)
	if err != nil {
		return err
	}
	opts := stream.Options{
		Codec:      code,
		StripeSize: cfg.K * cfg.ShardSize,
		Workers:    2,
		Seed:       uint64(cfg.Seed),
	}
	payload := make([]byte, cfg.Stripes*cfg.K*cfg.ShardSize)
	// Seeded deterministic payload; content is irrelevant to timing.
	st := uint64(cfg.Seed)
	for i := range payload {
		st = st*6364136223846793005 + 1442695040888963407
		payload[i] = byte(st >> 56)
	}
	enc, err := stream.NewEncoder(opts)
	if err != nil {
		return err
	}
	shardBufs := make([]bytes.Buffer, cfg.K+cfg.M)
	writers := make([]io.Writer, cfg.K+cfg.M)
	for i := range shardBufs {
		writers[i] = &shardBufs[i]
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		return err
	}

	decode := func(hedge bool) (stragglerRun, error) {
		o := opts
		if hedge {
			o.HedgeAfter = 500 * time.Microsecond
		}
		dec, err := stream.NewDecoder(o)
		if err != nil {
			return stragglerRun{}, err
		}
		readers := make([]io.Reader, cfg.K+cfg.M)
		for i := range shardBufs {
			readers[i] = bytes.NewReader(shardBufs[i].Bytes())
		}
		readers[cfg.SlowShard] = fault.NewReader(
			bytes.NewReader(shardBufs[cfg.SlowShard].Bytes()),
			fault.Plan{Ops: []fault.Op{{Kind: fault.Slow, Off: 0, Len: cfg.SlowMicros}}},
		)
		timer := &stripeTimer{w: io.Discard, stripeSize: cfg.K * cfg.ShardSize}
		start := time.Now()
		if err := dec.Decode(context.Background(), readers, timer, int64(len(payload))); err != nil {
			return stragglerRun{}, err
		}
		total := time.Since(start)
		s := dec.Stats()
		return stragglerRun{
			Hedged:       hedge,
			P50StripeUS:  float64(percentile(timer.intervals, 0.50)) / float64(time.Microsecond),
			P99StripeUS:  float64(percentile(timer.intervals, 0.99)) / float64(time.Microsecond),
			TotalMS:      float64(total) / float64(time.Millisecond),
			HedgedReads:  s.HedgedReads,
			HedgeWins:    s.HedgeWins,
			BreakerTrips: s.BreakerTrips,
			Retries:      s.Retries,
		}, nil
	}

	report := stragglerReport{Config: cfg}
	for _, hedge := range []bool{false, true} {
		run, err := decode(hedge)
		if err != nil {
			return fmt.Errorf("straggler decode (hedged=%v): %w", hedge, err)
		}
		report.Runs = append(report.Runs, run)
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Printf("straggler decode: RS(%d,%d) shard=%dB stripes=%d, shard %d at ~%dus/read (seed %d)\n",
		cfg.K, cfg.M, cfg.ShardSize, cfg.Stripes, cfg.SlowShard, cfg.SlowMicros, cfg.Seed)
	fmt.Printf("  %-8s %12s %12s %10s %8s %6s %6s\n",
		"mode", "p50/stripe", "p99/stripe", "total", "hedged", "wins", "trips")
	for _, r := range report.Runs {
		mode := "plain"
		if r.Hedged {
			mode = "hedged"
		}
		fmt.Printf("  %-8s %10.0fus %10.0fus %8.1fms %8d %6d %6d\n",
			mode, r.P50StripeUS, r.P99StripeUS, r.TotalMS, r.HedgedReads, r.HedgeWins, r.BreakerTrips)
	}
	return nil
}
