package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"dialga/internal/fault"
	"dialga/internal/node"
	"dialga/internal/obs"
	"dialga/internal/rs"
	"dialga/internal/stream"
)

// runServe starts an observability endpoint and loops the straggler
// workload behind it so every route serves live data:
//
//	/metrics      Prometheus text exposition of the shared registry
//	/debug/trace  the last stripe-lifecycle spans as JSON
//	/debug/pprof  the standard Go profiler endpoints
//
// The workload is the -straggler decode (one shard with a recurring
// seeded delay, hedging on), re-run continuously with a shared
// registry and tracer, so counters accumulate and the trace ring stays
// fresh until the process is interrupted: SIGINT/SIGTERM stop the
// workload loop and drain in-flight scrapes before exiting.
func runServe(addr string, quick bool) error {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.DefaultTraceCapacity)

	ctx, stop := node.SignalContext(context.Background())
	defer stop()

	go func() {
		for ctx.Err() == nil {
			if err := serveWorkload(ctx, reg, tracer, quick); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "workload: %v\n", err)
				time.Sleep(time.Second)
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/trace", tracer.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "dialga-bench observability endpoint\n\n"+
			"  /metrics       Prometheus text format\n"+
			"  /debug/trace   last stripe spans (JSON)\n"+
			"  /debug/pprof/  Go profiler\n")
	})

	fmt.Fprintf(os.Stderr, "serving metrics on %s (workload: straggler decode, hedged)\n", addr)
	return node.Serve(ctx, &http.Server{Addr: addr, Handler: mux}, nil, node.DefaultDrainTimeout)
}

// serveWorkload runs one encode + hedged straggler decode with all
// telemetry attached to the shared registry and tracer.
func serveWorkload(ctx context.Context, reg *obs.Registry, tracer *obs.Tracer, quick bool) error {
	cfg := stragglerConfig{
		K: 4, M: 2, ShardSize: 4096, Stripes: 96,
		SlowShard: 1, SlowMicros: 3000, Seed: 42,
	}
	if quick {
		cfg.Stripes, cfg.SlowMicros = 24, 2000
	}
	code, err := rs.New(cfg.K, cfg.M)
	if err != nil {
		return err
	}
	opts := stream.Options{
		Codec:      code,
		StripeSize: cfg.K * cfg.ShardSize,
		Workers:    2,
		Seed:       uint64(cfg.Seed),
		HedgeAfter: 500 * time.Microsecond,
		Metrics:    reg,
		Trace:      tracer,
	}

	payload := make([]byte, cfg.Stripes*cfg.K*cfg.ShardSize)
	st := uint64(cfg.Seed)
	for i := range payload {
		st = st*6364136223846793005 + 1442695040888963407
		payload[i] = byte(st >> 56)
	}
	enc, err := stream.NewEncoder(opts)
	if err != nil {
		return err
	}
	shardBufs := make([]bytes.Buffer, cfg.K+cfg.M)
	writers := make([]io.Writer, cfg.K+cfg.M)
	for i := range shardBufs {
		writers[i] = &shardBufs[i]
	}
	if err := enc.Encode(ctx, bytes.NewReader(payload), writers); err != nil {
		return err
	}

	dec, err := stream.NewDecoder(opts)
	if err != nil {
		return err
	}
	readers := make([]io.Reader, cfg.K+cfg.M)
	for i := range shardBufs {
		readers[i] = bytes.NewReader(shardBufs[i].Bytes())
	}
	readers[cfg.SlowShard] = fault.NewReader(
		bytes.NewReader(shardBufs[cfg.SlowShard].Bytes()),
		fault.Plan{Ops: []fault.Op{{Kind: fault.Slow, Off: 0, Len: cfg.SlowMicros}}},
	).WithMetrics(reg)
	return dec.Decode(ctx, readers, io.Discard, int64(len(payload)))
}
