package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dialga/internal/obs"
	"dialga/internal/shardfile"
)

// scrubMetrics is the scrub's registry series; all fields no-op when
// built from a nil registry.
type scrubMetrics struct {
	ok            *obs.Counter
	corrupt       *obs.Counter
	missing       *obs.Counter
	unverifiable  *obs.Counter
	blocksCorrupt *obs.Counter
	stripes       *obs.Counter
}

func newScrubMetrics(reg *obs.Registry) scrubMetrics {
	shard := func(result string) *obs.Counter {
		return reg.Counter("inspect_shards_scrubbed_total",
			"Shard files scrubbed, by outcome.",
			obs.Label{Key: "result", Value: result})
	}
	return scrubMetrics{
		ok:           shard("ok"),
		corrupt:      shard("corrupt"),
		missing:      shard("missing"),
		unverifiable: shard("unverifiable"),
		blocksCorrupt: reg.Counter("inspect_blocks_corrupt_total",
			"Stripe blocks whose checksum trailer failed verification."),
		stripes: reg.Counter("inspect_stripes_scrubbed_total",
			"Stripes read and verified across all scrubbed shards."),
	}
}

// verifyDir scrubs every shard file in dir: it parses and validates
// each header (the v3 self-CRC catches corrupted headers) and then
// verifies every stripe block's CRC-32C trailer. It reports one line
// per shard slot plus a summary, and returns whether any corruption,
// truncation, or header damage was found. Legacy v2 shards (and v3
// shards written without checksums) are reported as unverifiable but
// do not count as corrupt: they carry nothing to check against. A
// non-nil reg additionally receives the scrub's inspect_* series.
func verifyDir(dir string, w io.Writer, reg *obs.Registry) (corrupt bool, err error) {
	sm := newScrubMetrics(reg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	// Find one parseable header to learn the geometry, so missing
	// shard slots can be reported by index.
	var geom shardfile.Header
	haveGeom := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "shard.%d", &idx); err != nil {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		h, perr := shardfile.Parse(f)
		f.Close()
		if perr == nil {
			geom, haveGeom = h, true
			break
		}
	}
	if !haveGeom {
		return true, fmt.Errorf("no readable shard headers in %s", dir)
	}

	var verified, unverifiable, missing, bad int
	for i := 0; i < int(geom.K+geom.M); i++ {
		name := filepath.Base(shardfile.Path(dir, i))
		f, err := os.Open(shardfile.Path(dir, i))
		if err != nil {
			fmt.Fprintf(w, "%s: missing\n", name)
			missing++
			sm.missing.Inc()
			continue
		}
		h, err := shardfile.Parse(f)
		if err != nil {
			fmt.Fprintf(w, "%s: BAD HEADER: %v\n", name, err)
			bad++
			sm.corrupt.Inc()
			f.Close()
			continue
		}
		if fi, err := f.Stat(); err == nil && fi.Size() != h.ExpectedFileSize() {
			fmt.Fprintf(w, "%s: TRUNCATED: %d bytes on disk, want %d\n", name, fi.Size(), h.ExpectedFileSize())
			bad++
			sm.corrupt.Inc()
			f.Close()
			continue
		}
		res, err := shardfile.Scrub(f, h)
		f.Close()
		sm.stripes.Add(res.Stripes)
		sm.blocksCorrupt.Add(res.Corrupt)
		switch {
		case errors.Is(err, shardfile.ErrNoChecksum):
			fmt.Fprintf(w, "%s: unverifiable (v%d, checksum=%s: no block trailers)\n", name, h.Version, h.Algo)
			unverifiable++
			sm.unverifiable.Inc()
		case err != nil:
			fmt.Fprintf(w, "%s: READ ERROR: %v\n", name, err)
			bad++
			sm.corrupt.Inc()
		case res.Corrupt > 0:
			fmt.Fprintf(w, "%s: CORRUPT: %d of %d blocks failed %s (stripes %v)\n",
				name, res.Corrupt, res.Stripes, h.Algo, res.CorruptStripes)
			bad++
			sm.corrupt.Inc()
		default:
			fmt.Fprintf(w, "%s: ok (%d stripes, %s)\n", name, res.Stripes, h.Algo)
			verified++
			sm.ok.Inc()
		}
	}
	fmt.Fprintf(w, "scrub: %d ok, %d corrupt/damaged, %d missing, %d unverifiable (geometry k=%d m=%d)\n",
		verified, bad, missing, unverifiable, geom.K, geom.M)
	return bad > 0, nil
}
