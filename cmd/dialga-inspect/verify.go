package main

import (
	"fmt"
	"io"
	"path/filepath"

	"dialga/internal/obs"
	"dialga/internal/shardfile"
)

// scrubMetrics is the scrub's registry series; all fields no-op when
// built from a nil registry.
type scrubMetrics struct {
	ok            *obs.Counter
	corrupt       *obs.Counter
	missing       *obs.Counter
	unverifiable  *obs.Counter
	blocksCorrupt *obs.Counter
	stripes       *obs.Counter
}

func newScrubMetrics(reg *obs.Registry) scrubMetrics {
	shard := func(result string) *obs.Counter {
		return reg.Counter("inspect_shards_scrubbed_total",
			"Shard files scrubbed, by outcome.",
			obs.Label{Key: "result", Value: result})
	}
	return scrubMetrics{
		ok:           shard("ok"),
		corrupt:      shard("corrupt"),
		missing:      shard("missing"),
		unverifiable: shard("unverifiable"),
		blocksCorrupt: reg.Counter("inspect_blocks_corrupt_total",
			"Stripe blocks whose checksum trailer failed verification."),
		stripes: reg.Counter("inspect_stripes_scrubbed_total",
			"Stripes read and verified across all scrubbed shards."),
	}
}

// verifyDir scrubs every shard file in dir through the shared
// shardfile.ScrubDir walk (the same detection the cluster repair queue
// runs) and renders one line per shard slot plus a summary. It returns
// whether any corruption, truncation, or header damage was found;
// legacy trailer-less shards are reported as unverifiable but do not
// count as corrupt. A non-nil reg additionally receives the scrub's
// inspect_* series.
func verifyDir(dir string, w io.Writer, reg *obs.Registry) (corrupt bool, err error) {
	sm := newScrubMetrics(reg)
	rep, err := shardfile.ScrubDir(dir)
	if err != nil {
		return true, err
	}
	for _, s := range rep.Shards {
		name := filepath.Base(shardfile.Path(dir, s.Index))
		sm.stripes.Add(s.Result.Stripes)
		sm.blocksCorrupt.Add(s.Result.Corrupt)
		switch s.Status {
		case shardfile.ShardMissing:
			fmt.Fprintf(w, "%s: missing\n", name)
			sm.missing.Inc()
		case shardfile.ShardBadHeader:
			fmt.Fprintf(w, "%s: BAD HEADER: %s\n", name, s.Detail)
			sm.corrupt.Inc()
		case shardfile.ShardTruncated:
			fmt.Fprintf(w, "%s: TRUNCATED: %s\n", name, s.Detail)
			sm.corrupt.Inc()
		case shardfile.ShardReadError:
			fmt.Fprintf(w, "%s: READ ERROR: %s\n", name, s.Detail)
			sm.corrupt.Inc()
		case shardfile.ShardCorrupt:
			fmt.Fprintf(w, "%s: CORRUPT: %s\n", name, s.Detail)
			sm.corrupt.Inc()
		case shardfile.ShardUnverifiable:
			fmt.Fprintf(w, "%s: unverifiable (%s)\n", name, s.Detail)
			sm.unverifiable.Inc()
		default:
			fmt.Fprintf(w, "%s: ok (%d stripes, %s)\n", name, s.Result.Stripes, s.Header.Algo)
			sm.ok.Inc()
		}
	}
	ok, damaged, missing, unverifiable := rep.Counts()
	fmt.Fprintf(w, "scrub: %d ok, %d corrupt/damaged, %d missing, %d unverifiable (geometry k=%d m=%d)\n",
		ok, damaged, missing, unverifiable, rep.Geometry.K, rep.Geometry.M)
	return damaged > 0, nil
}
