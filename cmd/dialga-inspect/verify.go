package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dialga/internal/shardfile"
)

// verifyDir scrubs every shard file in dir: it parses and validates
// each header (the v3 self-CRC catches corrupted headers) and then
// verifies every stripe block's CRC-32C trailer. It reports one line
// per shard slot plus a summary, and returns whether any corruption,
// truncation, or header damage was found. Legacy v2 shards (and v3
// shards written without checksums) are reported as unverifiable but
// do not count as corrupt: they carry nothing to check against.
func verifyDir(dir string, w io.Writer) (corrupt bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	// Find one parseable header to learn the geometry, so missing
	// shard slots can be reported by index.
	var geom shardfile.Header
	haveGeom := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "shard.%d", &idx); err != nil {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		h, perr := shardfile.Parse(f)
		f.Close()
		if perr == nil {
			geom, haveGeom = h, true
			break
		}
	}
	if !haveGeom {
		return true, fmt.Errorf("no readable shard headers in %s", dir)
	}

	var verified, unverifiable, missing, bad int
	for i := 0; i < int(geom.K+geom.M); i++ {
		name := filepath.Base(shardfile.Path(dir, i))
		f, err := os.Open(shardfile.Path(dir, i))
		if err != nil {
			fmt.Fprintf(w, "%s: missing\n", name)
			missing++
			continue
		}
		h, err := shardfile.Parse(f)
		if err != nil {
			fmt.Fprintf(w, "%s: BAD HEADER: %v\n", name, err)
			bad++
			f.Close()
			continue
		}
		if fi, err := f.Stat(); err == nil && fi.Size() != h.ExpectedFileSize() {
			fmt.Fprintf(w, "%s: TRUNCATED: %d bytes on disk, want %d\n", name, fi.Size(), h.ExpectedFileSize())
			bad++
			f.Close()
			continue
		}
		res, err := shardfile.Scrub(f, h)
		f.Close()
		switch {
		case errors.Is(err, shardfile.ErrNoChecksum):
			fmt.Fprintf(w, "%s: unverifiable (v%d, checksum=%s: no block trailers)\n", name, h.Version, h.Algo)
			unverifiable++
		case err != nil:
			fmt.Fprintf(w, "%s: READ ERROR: %v\n", name, err)
			bad++
		case res.Corrupt > 0:
			fmt.Fprintf(w, "%s: CORRUPT: %d of %d blocks failed %s (stripes %v)\n",
				name, res.Corrupt, res.Stripes, h.Algo, res.CorruptStripes)
			bad++
		default:
			fmt.Fprintf(w, "%s: ok (%d stripes, %s)\n", name, res.Stripes, h.Algo)
			verified++
		}
	}
	fmt.Fprintf(w, "scrub: %d ok, %d corrupt/damaged, %d missing, %d unverifiable (geometry k=%d m=%d)\n",
		verified, bad, missing, unverifiable, geom.K, geom.M)
	return bad > 0, nil
}
