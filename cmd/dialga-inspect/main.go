// Command dialga-inspect runs a single encode configuration on the
// simulated testbed and dumps the full simulator statistics: throughput,
// load latency, cache and prefetcher behaviour, and per-layer read
// traffic. It is the diagnostic counterpart of dialga-bench.
//
// Example:
//
//	dialga-inspect -k 24 -m 4 -block 1024 -threads 8 -source pm -sw -dist 24
//
// It doubles as an integrity scrubber for shard directories written by
// dialga-encode: -verify parses every shard header (rejecting corrupt
// v3 headers via their self-CRC) and checks each stripe block's
// CRC-32C trailer, exiting nonzero if any shard is damaged:
//
//	dialga-inspect -verify shards/
package main

import (
	"flag"
	"fmt"
	"os"

	"dialga/internal/dialga"
	"dialga/internal/engine"
	"dialga/internal/isal"
	"dialga/internal/mem"
	"dialga/internal/obs"
	"dialga/internal/workload"
)

func main() {
	var (
		k        = flag.Int("k", 8, "data blocks per stripe")
		m        = flag.Int("m", 4, "parity blocks per stripe")
		block    = flag.Int("block", 1024, "block size in bytes (multiple of 64)")
		threads  = flag.Int("threads", 1, "concurrent encoding threads")
		totalMB  = flag.Int("mb", 32, "data MiB encoded per thread")
		source   = flag.String("source", "pm", "data source: pm or dram")
		hwp      = flag.Bool("hwp", true, "hardware prefetcher enabled")
		sw       = flag.Bool("sw", false, "software prefetching")
		dist     = flag.Int("dist", 0, "software prefetch distance in cacheline tasks (0 = k)")
		shuffle  = flag.Bool("shuffle", false, "static shuffle mapping (de-trains the HW prefetcher)")
		bf       = flag.Bool("bf", false, "buffer-friendly non-uniform prefetch distance")
		boost    = flag.Int("boost", 0, "buffer-friendly first-line distance boost (0 = default)")
		reduce   = flag.Int("reduce", 0, "buffer-friendly rest-line distance reduction (0 = default)")
		xp       = flag.Bool("xpline", false, "XPLine-expanded loop granularity")
		freq     = flag.Float64("freq", 3.3, "CPU frequency in GHz")
		simd     = flag.String("simd", "avx512", "SIMD width: avx256 or avx512")
		seq      = flag.Bool("seq", false, "sequential (column) block placement instead of scattered")
		dialgaOn = flag.Bool("dialga", false, "run the DIALGA adaptive scheduler instead of fixed kernel parameters")
		trace    = flag.Bool("trace", false, "with -dialga: print the coordinator trace (CSV to stderr)")
		verify   = flag.String("verify", "", "scrub the given shard directory (headers + block checksums) instead of running the simulator")
		metrics  = flag.Bool("metrics", false, "with -verify: append the scrub's metric series in Prometheus text format")
	)
	flag.Parse()

	if *verify != "" {
		var reg *obs.Registry
		if *metrics {
			reg = obs.NewRegistry()
		}
		corrupt, err := verifyDir(*verify, os.Stdout, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dialga-inspect:", err)
			os.Exit(1)
		}
		if *metrics {
			if err := reg.Expose(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "dialga-inspect:", err)
				os.Exit(1)
			}
		}
		if corrupt {
			os.Exit(1)
		}
		return
	}

	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = *hwp
	cfg.CPUFreqGHz = *freq
	switch *simd {
	case "avx256":
		cfg.SIMD = mem.AVX256
	case "avx512":
		cfg.SIMD = mem.AVX512
	default:
		fmt.Fprintf(os.Stderr, "unknown SIMD width %q\n", *simd)
		os.Exit(2)
	}
	var kind mem.DeviceKind
	switch *source {
	case "pm":
		kind = mem.PM
	case "dram":
		kind = mem.DRAM
	default:
		fmt.Fprintf(os.Stderr, "unknown source %q\n", *source)
		os.Exit(2)
	}
	placement := workload.Scattered
	if *seq {
		placement = workload.Sequential
	}
	d := *dist
	if d == 0 {
		d = *k
	}
	params := isal.KernelParams{
		Shuffle:          *shuffle,
		SWPrefetch:       *sw,
		PrefetchDistance: d,
		BufferFriendly:   *bf,
		FirstLineBoost:   *boost,
		RestReduce:       *reduce,
		XPLineLoop:       *xp,
	}

	e, err := engine.New(cfg, kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for t := 0; t < *threads; t++ {
		l, err := workload.New(workload.Config{
			K: *k, M: *m, BlockSize: *block,
			TotalDataBytes: *totalMB << 20,
			Placement:      placement, Seed: 42,
		}, t)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *dialgaOn {
			sched := dialga.New(l, e.Config(), dialga.DefaultOptions())
			if *trace {
				tid := t
				if tid == 0 {
					fmt.Fprintln(os.Stderr, "thread,us,windowGBps,phase,distance,highMode,contended")
				}
				sched.Trace = func(ev dialga.TraceEvent) {
					fmt.Fprintf(os.Stderr, "%d,%.1f,%.3f,%s,%d,%v,%v\n",
						tid, ev.NowNS/1000, ev.WindowGBps, ev.Phase, ev.Distance, ev.HighMode, ev.Contended)
				}
			}
			e.AddThread(sched)
		} else {
			e.AddThread(isal.NewProgram(l, e.Config(), params))
		}
	}
	res, err := e.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("config: RS(%d,%d) k=%d m=%d block=%dB threads=%d source=%s hwp=%v sw=%v dist=%d shuffle=%v bf=%v xpline=%v %s @%.1fGHz\n",
		*k+*m, *k, *k, *m, *block, *threads, kind, *hwp, *sw, d, *shuffle, *bf, *xp, cfg.SIMD, cfg.CPUFreqGHz)
	fmt.Printf("throughput:        %8.3f GB/s  (%.2f ms for %d MiB x %d threads)\n",
		res.ThroughputGBps, res.ElapsedNS/1e6, *totalMB, *threads)
	fmt.Printf("avg load latency:  %8.1f ns\n", res.AvgLoadLatencyNS())
	fmt.Printf("miss cycles/load:  %8.1f cyc\n", res.MissCyclesPerLoad(&cfg))
	fmt.Printf("L1  hits/misses:   %d / %d\n", res.L1.Hits, res.L1.Misses)
	fmt.Printf("L2  hits/misses:   %d / %d  prefetchFills=%d useless=%d late=%d\n",
		res.L2.Hits, res.L2.Misses, res.L2.PrefetchFills, res.L2.UselessPrefetch, res.L2.LatePrefetchHits)
	fmt.Printf("LLC hits/misses:   %d / %d\n", res.LLC.Hits, res.LLC.Misses)
	fmt.Printf("HW prefetcher:     issued=%d allocs=%d evicts=%d uselessRatio=%.3f l2pfRatio=%.3f\n",
		res.PF.Issued, res.PF.StreamAllocs, res.PF.StreamEvicts, res.UselessPrefetchRatio(), res.L2PrefetchRatio())
	var sw64 uint64
	var stallLoad, stallStore float64
	for _, th := range res.Threads {
		sw64 += th.SWPrefetches
		stallLoad += th.LoadStallNS
		stallStore += th.StoreStallNS
	}
	fmt.Printf("SW prefetches:     %d\n", sw64)
	fmt.Printf("stall (load/store): %.2f / %.2f ms\n", stallLoad/1e6, stallStore/1e6)
	fmt.Printf("read traffic:      encode=%.1f MiB  ctrl=%.1f MiB  media=%.1f MiB  (media amp %.3f)\n",
		float64(res.EncodeReadBytes)/(1<<20), float64(res.CtrlReadBytes)/(1<<20), float64(res.MediaReadBytes)/(1<<20),
		float64(res.MediaReadBytes)/float64(res.EncodeReadBytes))
	fmt.Printf("PM buffer:         hits=%d misses=%d evictedUnused=%d\n",
		res.Dev.BufHits, res.Dev.BufMisses, res.Dev.BufEvictedUnused)
	fmt.Printf("write traffic:     ctrl=%.1f MiB media=%.1f MiB\n",
		float64(res.Dev.CtrlWriteBytes)/(1<<20), float64(res.Dev.MediaWriteBytes)/(1<<20))
}
