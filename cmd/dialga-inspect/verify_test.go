package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dialga/internal/rs"
	"dialga/internal/shardfile"
	"dialga/internal/stream"
)

// writeShardDir encodes payload into a k+m shard directory with the
// given header version (v3 = checksummed blocks, v2 = bare blocks),
// mirroring what dialga-encode writes.
func writeShardDir(t *testing.T, dir string, k, m int, version uint32, payload []byte) {
	t.Helper()
	code, err := rs.New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	algo := shardfile.AlgoCRC32C
	if version == shardfile.VersionV2 {
		algo = shardfile.AlgoNone
	}
	enc, err := stream.NewEncoder(stream.Options{
		Codec: code, StripeSize: k * 1024, Checksum: algo.Stream(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stripes := (uint64(len(payload)) + uint64(enc.StripeSize()) - 1) / uint64(enc.StripeSize())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	writers := make([]io.Writer, k+m)
	for i := range writers {
		f, err := os.Create(shardfile.Path(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		hdr := shardfile.Header{
			Version: version, K: uint32(k), M: uint32(m), Index: uint32(i),
			ShardSize: uint32(enc.ShardSize()), StripeCount: stripes,
			FileSize: uint64(len(payload)), Algo: algo,
		}
		if _, err := f.Write(hdr.Marshal()); err != nil {
			t.Fatal(err)
		}
		writers[i] = f
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
}

func corruptFile(t *testing.T, path string, off int64, mask byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= mask
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDir(t *testing.T) {
	payload := bytes.Repeat([]byte("scrub me"), 2000)

	t.Run("pristine v3 set is clean", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "shards")
		writeShardDir(t, dir, 4, 2, shardfile.VersionV3, payload)
		var out strings.Builder
		corrupt, err := verifyDir(dir, &out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if corrupt {
			t.Fatalf("pristine shards reported corrupt:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "6 ok, 0 corrupt") {
			t.Fatalf("unexpected summary:\n%s", out.String())
		}
	})

	t.Run("flipped block bit is caught", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "shards")
		writeShardDir(t, dir, 4, 2, shardfile.VersionV3, payload)
		corruptFile(t, shardfile.Path(dir, 2), int64(shardfile.HeaderSizeV3)+777, 0x04)
		var out strings.Builder
		corrupt, err := verifyDir(dir, &out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !corrupt {
			t.Fatalf("flipped bit not reported:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "shard.002: CORRUPT") {
			t.Fatalf("corrupt shard not named:\n%s", out.String())
		}
	})

	t.Run("corrupt header and missing shard reported", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "shards")
		writeShardDir(t, dir, 4, 2, shardfile.VersionV3, payload)
		corruptFile(t, shardfile.Path(dir, 0), 9, 0xff) // k field: self-CRC must catch it
		if err := os.Remove(shardfile.Path(dir, 5)); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		corrupt, err := verifyDir(dir, &out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !corrupt {
			t.Fatal("corrupt header not flagged")
		}
		if !strings.Contains(out.String(), "shard.000: BAD HEADER") ||
			!strings.Contains(out.String(), "shard.005: missing") {
			t.Fatalf("report missing expected lines:\n%s", out.String())
		}
	})

	t.Run("truncated shard reported", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "shards")
		writeShardDir(t, dir, 4, 2, shardfile.VersionV3, payload)
		p := shardfile.Path(dir, 3)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		corrupt, err := verifyDir(dir, &out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !corrupt || !strings.Contains(out.String(), "shard.003: TRUNCATED") {
			t.Fatalf("truncated shard not reported:\n%s", out.String())
		}
	})

	t.Run("v2 set is unverifiable, not corrupt", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "shards")
		writeShardDir(t, dir, 3, 2, shardfile.VersionV2, payload)
		var out strings.Builder
		corrupt, err := verifyDir(dir, &out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if corrupt {
			t.Fatalf("v2 set reported corrupt:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "5 unverifiable") {
			t.Fatalf("v2 shards not reported unverifiable:\n%s", out.String())
		}
	})

	t.Run("empty dir errors", func(t *testing.T) {
		if _, err := verifyDir(t.TempDir(), io.Discard, nil); err == nil {
			t.Fatal("empty directory accepted")
		}
	})
}
