// Command dialga-node serves one node of a dialga shard cluster: a
// shard store over HTTP plus an object gateway that stripes whole
// objects across the cluster with the streaming erasure pipeline, and
// a background repair loop that scrubs and rebuilds damaged shards.
//
//	dialga-node -id n0 -dir /srv/dialga \
//	    -cluster 'n0=127.0.0.1:7070/r0/z0,n1=127.0.0.1:7071/r1/z0,...'
//
// Every node is equivalent: placement is a deterministic function of
// the cluster map and the object name, so any node's gateway can serve
// any object and there is no metadata service. The process drains
// gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"dialga/internal/cluster"
	"dialga/internal/node"
	"dialga/internal/obs"
)

func main() {
	var (
		id             = flag.String("id", "", "this node's ID in the cluster map (required)")
		dir            = flag.String("dir", "", "shard storage directory (required)")
		spec           = flag.String("cluster", "", "cluster map: id=addr[/rack[/zone]],... (required)")
		listen         = flag.String("listen", "", "listen address (default: this node's address in the map)")
		k              = flag.Int("k", 4, "data shards per stripe")
		m              = flag.Int("m", 2, "parity shards per stripe")
		stripeKiB      = flag.Int("stripe", 1024, "stripe size in KiB for object puts")
		route          = flag.String("route", "first-k", "read routing policy: first-k, round-robin, least-loaded")
		hedge          = flag.Duration("hedge", 30*time.Millisecond, "hedged-read deadline floor for object gets (0 disables hedging)")
		fgRPS          = flag.Float64("fg-rps", 0, "foreground admission rate, requests/s per node (0 = unmetered)")
		repairRPS      = flag.Float64("repair-rps", 0, "repair admission rate, requests/s per node (0 = unmetered)")
		repairInterval = flag.Duration("repair-interval", 0, "background scrub+repair period (0 disables the repair loop)")
		drain          = flag.Duration("drain", node.DefaultDrainTimeout, "graceful-shutdown drain window")
	)
	flag.Parse()
	if err := run(*id, *dir, *spec, *listen, *k, *m, *stripeKiB, *route, *hedge,
		*fgRPS, *repairRPS, *repairInterval, *drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(id, dir, spec, listen string, k, m, stripeKiB int, route string,
	hedge time.Duration, fgRPS, repairRPS float64, repairInterval, drain time.Duration) error {
	if id == "" || dir == "" || spec == "" {
		return fmt.Errorf("dialga-node needs -id, -dir and -cluster")
	}
	cmap, err := cluster.ParseSpec(spec)
	if err != nil {
		return err
	}
	self, ok := cmap.Get(cluster.NodeID(id))
	if !ok {
		return fmt.Errorf("dialga-node: -id %s is not in the cluster map", id)
	}
	if listen == "" {
		listen = self.Addr
	}
	router, ok := cluster.NewRouter(route)
	if !ok {
		return fmt.Errorf("dialga-node: unknown -route %q (first-k, round-robin, least-loaded)", route)
	}

	reg := obs.NewRegistry()
	limiter := cluster.NewLimiter(map[string]cluster.Rate{
		node.ClassForeground: {PerSecond: fgRPS},
		node.ClassRepair:     {PerSecond: repairRPS},
	}, reg)

	store, err := node.OpenStore(dir, reg)
	if err != nil {
		return err
	}
	gw, err := cluster.NewGateway(cluster.GatewayOptions{
		Map: cmap, K: k, M: m,
		StripeSize: stripeKiB * 1024,
		Router:     router,
		HedgeAfter: hedge,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	nh := node.NewServer(store, limiter, reg).Handler()
	gh := gw.Handler()
	mux.Handle("/v1/shard/", nh)
	mux.Handle("/v1/stat/", nh)
	mux.Handle("/v1/scrub/", nh)
	mux.Handle("/v1/objects", nh)
	mux.Handle("/healthz", nh)
	mux.Handle("/metrics", nh)
	mux.Handle("/v1/object/", gh)
	mux.Handle("/v1/objects/all", gh)
	mux.Handle("/v1/placement/", gh)

	ctx, stop := node.SignalContext(context.Background())
	defer stop()

	if repairInterval > 0 {
		rep := cluster.NewRepairer(gw, limiter, reg)
		go rep.Run(ctx, repairInterval)
	}

	fmt.Fprintf(os.Stderr, "dialga-node %s: serving %s (dir %s, RS(%d,%d), route %s, %d-node map)\n",
		id, listen, dir, k, m, route, cmap.Len())
	return node.Serve(ctx, &http.Server{Addr: listen, Handler: mux}, nil, drain)
}
