// Command dialga-node serves one node of a dialga shard cluster: a
// shard store over HTTP plus an object gateway that stripes whole
// objects across the cluster with the streaming erasure pipeline, and
// a background repair loop that scrubs and rebuilds damaged shards.
//
//	dialga-node -id n0 -dir /srv/dialga \
//	    -cluster 'n0=127.0.0.1:7070/r0/z0,n1=127.0.0.1:7071/r1/z0,...'
//
// Every node is equivalent: placement is a deterministic function of
// the cluster map and the object name, so any node's gateway can serve
// any object and there is no metadata service. The process drains
// gracefully on SIGINT/SIGTERM.
//
// With -cluster-file the map comes from a spec file instead, and
// SIGHUP reloads it live: the new map (with a bumped epoch) swaps in
// atomically without dropping in-flight streams, and the repair loop
// rebalances — every shard whose placement changed is migrated
// copy-then-delete to its new home, paced by the shared
// -repair-bw/-rebalance-bw budget, always yielding to real repairs.
// The serving map and its epoch are visible at /v1/cluster/map.
//
// With -write-quorum below k+m the gateway acknowledges puts once a
// quorum of shards is durable; each missing shard is journaled to the
// -intent-log before the ack and rebuilt by the repair loop, which
// adopts the journal at startup. The store itself recovers crash
// debris (orphaned temp files, torn shards) every time it opens.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dialga/internal/cluster"
	"dialga/internal/node"
	"dialga/internal/obs"
)

// nodeConfig collects the flag values; run is kept separate from flag
// parsing so tests can drive it directly.
type nodeConfig struct {
	id, dir, spec, listen string
	clusterFile           string
	k, m, stripeKiB       int
	route                 string
	hedge                 time.Duration
	fgRPS, repairRPS      float64
	repairInterval        time.Duration
	drain                 time.Duration

	writeQuorum    int
	putRetries     int
	intentLog      string
	repairAttempts int
	repairBW       int64
	rebalanceBW    int64
}

func main() {
	var cfg nodeConfig
	flag.StringVar(&cfg.id, "id", "", "this node's ID in the cluster map (required)")
	flag.StringVar(&cfg.dir, "dir", "", "shard storage directory (required)")
	flag.StringVar(&cfg.spec, "cluster", "", "cluster map: id=addr[/rack[/zone]],... (this or -cluster-file required)")
	flag.StringVar(&cfg.clusterFile, "cluster-file", "", "file holding the cluster map spec; SIGHUP reloads it live")
	flag.StringVar(&cfg.listen, "listen", "", "listen address (default: this node's address in the map)")
	flag.IntVar(&cfg.k, "k", 4, "data shards per stripe")
	flag.IntVar(&cfg.m, "m", 2, "parity shards per stripe")
	flag.IntVar(&cfg.stripeKiB, "stripe", 1024, "stripe size in KiB for object puts")
	flag.StringVar(&cfg.route, "route", "first-k", "read routing policy: first-k, round-robin, least-loaded")
	flag.DurationVar(&cfg.hedge, "hedge", 30*time.Millisecond, "hedged-read deadline floor for object gets (0 disables hedging)")
	flag.Float64Var(&cfg.fgRPS, "fg-rps", 0, "foreground admission rate, requests/s per node (0 = unmetered)")
	flag.Float64Var(&cfg.repairRPS, "repair-rps", 0, "repair admission rate, requests/s per node (0 = unmetered)")
	flag.DurationVar(&cfg.repairInterval, "repair-interval", 0, "background scrub+repair period (0 disables the repair loop)")
	flag.DurationVar(&cfg.drain, "drain", node.DefaultDrainTimeout, "graceful-shutdown drain window")
	flag.IntVar(&cfg.writeQuorum, "write-quorum", 0, "shards that must be durable before a put is acked (0 = all k+m; else in [k+1, k+m])")
	flag.IntVar(&cfg.putRetries, "put-retries", 0, "per-shard retries on transient put errors (0 = default 2, -1 disables)")
	flag.StringVar(&cfg.intentLog, "intent-log", "", "durable write-intent journal path (empty disables; required for -write-quorum below k+m to survive restarts)")
	flag.IntVar(&cfg.repairAttempts, "repair-attempts", 0, "rebuild attempts before a repair task is dropped (0 = default)")
	flag.Int64Var(&cfg.repairBW, "repair-bw", 0, "repair read-bandwidth budget in bytes/s (0 = unmetered)")
	flag.Int64Var(&cfg.rebalanceBW, "rebalance-bw", 0, "bandwidth budget in bytes/s shared by repair and rebalance data movement (0 = use -repair-bw)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// loadSpec reads the cluster map from -cluster-file (if set) or the
// inline -cluster spec.
func loadSpec(cfg nodeConfig) (*cluster.Map, error) {
	if cfg.clusterFile != "" {
		b, err := os.ReadFile(cfg.clusterFile)
		if err != nil {
			return nil, fmt.Errorf("dialga-node: reading -cluster-file: %w", err)
		}
		return cluster.ParseSpec(strings.TrimSpace(string(b)))
	}
	return cluster.ParseSpec(cfg.spec)
}

func run(cfg nodeConfig) error {
	if cfg.id == "" || cfg.dir == "" || (cfg.spec == "" && cfg.clusterFile == "") {
		return fmt.Errorf("dialga-node needs -id, -dir and -cluster or -cluster-file")
	}
	cmap, err := loadSpec(cfg)
	if err != nil {
		return err
	}
	self, ok := cmap.Get(cluster.NodeID(cfg.id))
	if !ok {
		return fmt.Errorf("dialga-node: -id %s is not in the cluster map", cfg.id)
	}
	if cfg.listen == "" {
		cfg.listen = self.Addr
	}
	router, ok := cluster.NewRouter(cfg.route)
	if !ok {
		return fmt.Errorf("dialga-node: unknown -route %q (first-k, round-robin, least-loaded)", cfg.route)
	}

	reg := obs.NewRegistry()
	limiter := cluster.NewLimiter(map[string]cluster.Rate{
		node.ClassForeground: {PerSecond: cfg.fgRPS},
		node.ClassRepair:     {PerSecond: cfg.repairRPS},
	}, reg)

	store, err := node.OpenStore(cfg.dir, reg)
	if err != nil {
		return err
	}
	var intents *cluster.IntentLog
	if cfg.intentLog != "" {
		intents, err = cluster.OpenIntentLog(cfg.intentLog, reg)
		if err != nil {
			return err
		}
		defer intents.Close()
	}
	gw, err := cluster.NewGateway(cluster.GatewayOptions{
		Map: cmap, K: cfg.k, M: cfg.m,
		StripeSize:  cfg.stripeKiB * 1024,
		Router:      router,
		HedgeAfter:  cfg.hedge,
		Metrics:     reg,
		WriteQuorum: cfg.writeQuorum,
		PutRetries:  cfg.putRetries,
		Intents:     intents,
	})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	nh := node.NewServer(store, limiter, reg).Handler()
	gh := gw.Handler()
	mux.Handle("/v1/shard/", nh)
	mux.Handle("/v1/stat/", nh)
	mux.Handle("/v1/scrub/", nh)
	mux.Handle("/v1/objects", nh)
	mux.Handle("/healthz", nh)
	mux.Handle("/metrics", nh)
	mux.Handle("/v1/object/", gh)
	mux.Handle("/v1/objects/all", gh)
	mux.Handle("/v1/placement/", gh)
	mux.Handle("/v1/cluster/", gh)

	ctx, stop := node.SignalContext(context.Background())
	defer stop()

	// The repair queue also executes rebalance migrations, so a node
	// with a reloadable map needs one even without a scrub loop. Both
	// kinds of data movement share one bandwidth budget.
	var rep *cluster.Repairer
	if cfg.repairInterval > 0 || cfg.clusterFile != "" {
		bw := cfg.repairBW
		if cfg.rebalanceBW > 0 {
			bw = cfg.rebalanceBW
		}
		rep = cluster.NewRepairerOpts(gw, limiter, reg, cluster.RepairerOptions{
			MaxAttempts: cfg.repairAttempts,
			Bandwidth:   bw,
		})
		// Shards the gateway could not land at put time go straight onto
		// the repair queue; the journal keeps them across restarts.
		gw.SetOnDegraded(func(object string, idx int) { rep.Enqueue(object, idx) })
		if n := rep.AdoptIntents(); n > 0 {
			fmt.Fprintf(os.Stderr, "dialga-node %s: adopted %d journaled write-intents\n", cfg.id, n)
		}
		if cfg.repairInterval > 0 {
			go rep.Run(ctx, cfg.repairInterval)
		}
	}

	if cfg.clusterFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
				}
				next, err := loadSpec(cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dialga-node %s: reload: %v\n", cfg.id, err)
					continue
				}
				prev := gw.Map()
				if err := gw.UpdateMap(next.WithEpoch(prev.Epoch() + 1)); err != nil {
					fmt.Fprintf(os.Stderr, "dialga-node %s: reload: %v\n", cfg.id, err)
					continue
				}
				fmt.Fprintf(os.Stderr, "dialga-node %s: cluster map reloaded, epoch %d (%d nodes)\n",
					cfg.id, prev.Epoch()+1, next.Len())
				go func(prev *cluster.Map) {
					moves, err := rep.Rebalance(ctx, prev)
					if err != nil {
						fmt.Fprintf(os.Stderr, "dialga-node %s: rebalance: %v\n", cfg.id, err)
						return
					}
					if moves > 0 {
						done, failed := rep.DrainOnce(ctx)
						fmt.Fprintf(os.Stderr, "dialga-node %s: rebalance: %d moves enqueued, %d done, %d failed\n",
							cfg.id, moves, done, failed)
					}
				}(prev)
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "dialga-node %s: serving %s (dir %s, RS(%d,%d), route %s, %d-node map)\n",
		cfg.id, cfg.listen, cfg.dir, cfg.k, cfg.m, cfg.route, cmap.Len())
	return node.Serve(ctx, &http.Server{Addr: cfg.listen, Handler: mux}, nil, cfg.drain)
}
