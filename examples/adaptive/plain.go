package main

import (
	"dialga/internal/engine"
	"dialga/internal/isal"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

// isalPlain builds the unscheduled ISA-L kernel for the baseline
// comparison.
func isalPlain(l *workload.Layout, cfg *mem.Config) engine.Program {
	return isal.NewProgram(l, cfg, isal.KernelParams{})
}
