// Adaptive traces DIALGA's coordinator while it tunes a live encoding
// run: the hill-climbing search for the software prefetch distance
// (§4.1.2 — starting at d=k, probing a neighbourhood of 16), the
// windowed performance measurements, and the settled state with its
// fluctuation watch. Run it to watch the scheduler converge.
package main

import (
	"fmt"
	"log"

	"dialga/internal/dialga"
	"dialga/internal/engine"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

func main() {
	const k, m, block = 8, 4, 1024

	cfg := mem.DefaultConfig()
	e, err := engine.New(cfg, mem.PM)
	if err != nil {
		log.Fatal(err)
	}
	l, err := workload.New(workload.Config{
		K: k, M: m, BlockSize: block,
		TotalDataBytes: 24 << 20,
		Placement:      workload.Scattered,
		Seed:           9,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}

	sched := dialga.New(l, e.Config(), dialga.DefaultOptions())
	fmt.Printf("DIALGA coordinator trace: RS(%d,%d), %dB blocks, d starts at k=%d\n",
		k+m, k, block, k)
	fmt.Printf("%10s  %12s  %14s  %6s  %s\n", "time(us)", "window GB/s", "phase", "dist", "mode")
	events := 0
	sched.Trace = func(ev dialga.TraceEvent) {
		events++
		if events > 40 && ev.Phase == "settled" && events%32 != 0 {
			return // keep the settled tail short
		}
		mode := "low-pressure"
		if ev.HighMode {
			mode = "high-pressure"
		}
		if ev.Contended {
			mode += "+contended"
		}
		fmt.Printf("%10.1f  %12.3f  %14s  %6d  %s\n",
			ev.NowNS/1000, ev.WindowGBps, ev.Phase, ev.Distance, mode)
	}
	e.AddThread(sched)

	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverged: distance d=%d (started at %d), %.3f GB/s overall\n",
		sched.Distance(), k, res.ThroughputGBps)
	fmt.Printf("the plain ISA-L kernel on the same workload runs at ~%.1fx lower throughput\n",
		estimateBaselineRatio(res.ThroughputGBps, l, e.Config()))
}

func estimateBaselineRatio(dialgaGBps float64, l *workload.Layout, cfg *mem.Config) float64 {
	e, err := engine.New(*cfg, mem.PM)
	if err != nil {
		log.Fatal(err)
	}
	l2, err := workload.New(workload.Config{
		K: l.K, M: l.M, BlockSize: l.BlockSize,
		TotalDataBytes: 24 << 20,
		Placement:      workload.Scattered,
		Seed:           9,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	e.AddThread(isalPlain(l2, e.Config()))
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return dialgaGBps / res.ThroughputGBps
}
