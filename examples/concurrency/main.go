// Concurrency reproduces the paper's multi-thread story (Obs. 5,
// §5.3) in miniature: under high concurrency, aggressive hardware
// prefetching thrashes the PM on-DIMM read buffer — media read traffic
// amplifies and aggregate throughput collapses. DIALGA's coordinator
// detects the pressure (thread threshold + sampled latency), disables
// the prefetcher through the shuffle mapping, expands the loop to
// XPLine granularity and caps the prefetch distance per Eq. 1.
package main

import (
	"fmt"
	"log"

	"dialga/internal/dialga"
	"dialga/internal/engine"
	"dialga/internal/isal"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

func run(threads int, useDialga bool) (gbps, mediaAmp float64) {
	cfg := mem.DefaultConfig()
	e, err := engine.New(cfg, mem.PM)
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < threads; t++ {
		l, err := workload.New(workload.Config{
			K: 24, M: 4, BlockSize: 1024,
			TotalDataBytes: 12 << 20,
			Placement:      workload.Scattered,
			Seed:           1,
		}, t)
		if err != nil {
			log.Fatal(err)
		}
		if useDialga {
			e.AddThread(dialga.New(l, e.Config(), dialga.DefaultOptions()))
		} else {
			e.AddThread(isal.NewProgram(l, e.Config(), isal.KernelParams{}))
		}
	}
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res.ThroughputGBps, float64(res.MediaReadBytes) / float64(res.EncodeReadBytes)
}

func main() {
	fmt.Println("RS(28,24) 1KB encoding under concurrency on simulated PM")
	fmt.Printf("%-8s  %22s  %22s\n", "threads", "ISA-L GB/s (media amp)", "DIALGA GB/s (media amp)")
	for _, t := range []int{1, 4, 8, 12, 16, 18} {
		bg, ba := run(t, false)
		dg, da := run(t, true)
		note := ""
		if t > 12 {
			note = "  <- above DIALGA's thread threshold"
		}
		fmt.Printf("%-8d  %12.2f (%5.2fx)  %13.2f (%5.2fx)%s\n", t, bg, ba, dg, da, note)
	}
	fmt.Println("\nPast the knee, ISA-L's prefetched XPLines are evicted from the 96KB")
	fmt.Println("read buffer before use: media traffic amplifies and scaling collapses.")
	fmt.Println("Above 12 threads DIALGA trials its high-pressure entry point, caps the")
	fmt.Println("prefetch distance per Eq. 1, and keeps amplification near 1.")
}
