// Storagenode is a toy PM-resident object store built on the LRC codec:
// objects are striped as LRC(12, 4, 2), a background scrubber verifies
// parity, and failed blocks are repaired — locally (6 reads) when the
// failure pattern allows, globally (12 reads) otherwise. This is the
// reliability use case that motivates erasure coding on PM in the
// paper's introduction.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"dialga"
)

const (
	k, m, l   = 12, 4, 2
	blockSize = 4096
)

type object struct {
	name   string
	stripe [][]byte // k data + m global + l local
	size   int
}

type node struct {
	codec   *dialga.LRC
	objects map[string]*object
}

func newNode() *node {
	c, err := dialga.NewLRC(k, m, l)
	if err != nil {
		log.Fatal(err)
	}
	return &node{codec: c, objects: map[string]*object{}}
}

// put stripes and encodes an object.
func (n *node) put(name string, payload []byte) {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, blockSize)
		lo := i * blockSize
		if lo < len(payload) {
			hi := lo + blockSize
			if hi > len(payload) {
				hi = len(payload)
			}
			copy(data[i], payload[lo:hi])
		}
	}
	global, local, err := n.codec.EncodeAppend(data)
	if err != nil {
		log.Fatal(err)
	}
	stripe := append(append(append([][]byte{}, data...), global...), local...)
	n.objects[name] = &object{name: name, stripe: stripe, size: len(payload)}
}

// get reassembles the payload, repairing first if needed.
func (n *node) get(name string) []byte {
	obj := n.objects[name]
	if obj == nil {
		return nil
	}
	if err := n.codec.Reconstruct(obj.stripe); err != nil {
		log.Fatalf("object %s unrecoverable: %v", name, err)
	}
	var out []byte
	for i := 0; i < k; i++ {
		out = append(out, obj.stripe[i]...)
	}
	return out[:obj.size]
}

// scrub verifies every object and repairs damage, reporting repair cost.
func (n *node) scrub() (repairedBlocks, blocksRead int) {
	for _, obj := range n.objects {
		for idx, b := range obj.stripe {
			if b != nil {
				continue
			}
			blocksRead += n.codec.RepairCost(obj.stripe, idx)
			repairedBlocks++
		}
		if err := n.codec.Reconstruct(obj.stripe); err != nil {
			log.Fatalf("scrub: %s unrecoverable: %v", obj.name, err)
		}
	}
	return repairedBlocks, blocksRead
}

func main() {
	// A private seeded source (never the global math/rand) keeps the
	// failure pattern and payloads reproducible run to run.
	seed := flag.Int64("seed", 7, "payload and failure-pattern RNG seed")
	flag.Parse()

	n := newNode()
	r := rand.New(rand.NewSource(*seed))

	// Store 32 objects.
	originals := map[string][]byte{}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("obj-%02d", i)
		payload := make([]byte, 1+r.Intn(k*blockSize))
		r.Read(payload)
		originals[name] = payload
		n.put(name, payload)
	}
	fmt.Printf("stored %d objects as LRC(%d,%d,%d) stripes of %dB blocks\n",
		len(n.objects), k, m, l, blockSize)

	// Inject failures: single-block failures (locally repairable) and a
	// few double failures (need global decode).
	single, double := 0, 0
	for name, obj := range n.objects {
		switch {
		case name < "obj-20": // 20 objects: one random lost block
			obj.stripe[r.Intn(k)] = nil
			single++
		case name < "obj-26": // 6 objects: two lost blocks in one group
			g := r.Intn(l)
			lo := g * (k / l)
			obj.stripe[lo] = nil
			obj.stripe[lo+1] = nil
			double++
		}
	}
	fmt.Printf("injected %d single-block and %d double-block failures\n", single, double)

	repaired, reads := n.scrub()
	fmt.Printf("scrub repaired %d blocks reading %d blocks total\n", repaired, reads)
	fmt.Printf("  (all-global decoding would have read %d blocks; local repair saved %.0f%%)\n",
		repaired*k, 100*(1-float64(reads)/float64(repaired*k)))

	// Verify every object survived intact.
	for name, want := range originals {
		if !bytes.Equal(n.get(name), want) {
			log.Fatalf("object %s corrupted", name)
		}
	}
	fmt.Println("all objects verified byte-identical after repair")
}
