// Quickstart: encode a stripe, lose blocks, recover — the 30-line tour
// of the byte-level API.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"dialga"
)

func main() {
	// A private seeded source (never the global math/rand) keeps the
	// run reproducible: same seed, same payload, same demo output.
	seed := flag.Int64("seed", 42, "payload RNG seed")
	flag.Parse()

	const k, m, blockSize = 8, 4, 1024

	codec, err := dialga.NewCodec(k, m)
	if err != nil {
		log.Fatal(err)
	}

	// k data blocks of random content.
	data := make([][]byte, k)
	r := rand.New(rand.NewSource(*seed))
	for i := range data {
		data[i] = make([]byte, blockSize)
		r.Read(data[i])
	}

	// Encode m parity blocks.
	parity, err := codec.EncodeAppend(data)
	if err != nil {
		log.Fatal(err)
	}
	ok, _ := codec.Verify(data, parity)
	fmt.Printf("encoded RS(%d,%d): parity consistent = %v\n", k+m, k, ok)

	// Simulate losing m arbitrary blocks (data and parity).
	stripe := append(append([][]byte{}, data...), parity...)
	backup := append([][]byte{}, stripe...)
	for _, lost := range []int{1, 5, 8, 11} {
		stripe[lost] = nil
	}
	if err := codec.Reconstruct(stripe); err != nil {
		log.Fatal(err)
	}
	for i := range stripe {
		if !bytes.Equal(stripe[i], backup[i]) {
			log.Fatalf("block %d wrong after reconstruction", i)
		}
	}
	fmt.Println("recovered 4 lost blocks (2 data + 2 parity) exactly")

	// Incremental update: overwrite one data block, patch parity.
	newBlock := make([]byte, blockSize)
	r.Read(newBlock)
	if err := codec.Update(3, data[3], newBlock, parity); err != nil {
		log.Fatal(err)
	}
	data[3] = newBlock
	ok, _ = codec.Verify(data, parity)
	fmt.Printf("incremental parity update after overwrite: consistent = %v\n", ok)
}
