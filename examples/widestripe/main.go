// Widestripe reproduces the paper's wide-stripe story (Obs. 3, §5.2.1)
// in miniature on the simulated PM testbed: as the stripe width k grows
// past the L2 stream prefetcher's tracking capacity (32 streams on
// Cascade Lake), ISA-L's throughput collapses — and DIALGA's pipelined
// software prefetching recovers it without decomposing the stripe.
//
// Wide stripes matter because they cut storage overhead: VAST-style
// systems run k>100 (§3.2), far beyond any hardware prefetcher.
package main

import (
	"fmt"
	"log"

	"dialga/internal/dialga"
	"dialga/internal/engine"
	"dialga/internal/isal"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

func run(k int, useDialga bool) (gbps float64, pfIssued uint64) {
	cfg := mem.DefaultConfig()
	e, err := engine.New(cfg, mem.PM)
	if err != nil {
		log.Fatal(err)
	}
	l, err := workload.New(workload.Config{
		K: k, M: 4, BlockSize: 1024,
		TotalDataBytes: 8 << 20,
		Placement:      workload.Scattered,
		Seed:           1,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if useDialga {
		e.AddThread(dialga.New(l, e.Config(), dialga.DefaultOptions()))
	} else {
		e.AddThread(isal.NewProgram(l, e.Config(), isal.KernelParams{}))
	}
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res.ThroughputGBps, res.PF.Issued
}

func main() {
	fmt.Println("wide-stripe encoding on simulated PM (m=4, 1KB blocks)")
	fmt.Printf("%-6s  %12s  %14s  %12s\n", "k", "ISA-L GB/s", "HW prefetches", "DIALGA GB/s")
	for _, k := range []int{16, 24, 32, 40, 48, 64} {
		base, pf := run(k, false)
		dial, _ := run(k, true)
		marker := ""
		if pf == 0 {
			marker = "  <- stream table overwhelmed"
		}
		fmt.Printf("%-6d  %12.2f  %14d  %12.2f%s\n", k, base, pf, dial, marker)
	}
	fmt.Println("\nPast k=32 the stream prefetcher tracks nothing (0 prefetches) and")
	fmt.Println("ISA-L drops to un-prefetched latency; DIALGA's software prefetching")
	fmt.Println("does not depend on the stream table and keeps wide stripes fast.")
}
