// Benchmarks regenerating the paper's tables and figures, one target
// per figure, plus byte-level codec benchmarks and the DESIGN.md
// ablations. Figure benchmarks run the harness in quick mode so the
// whole suite stays tractable under `go test -bench=.`; the recorded
// EXPERIMENTS.md numbers come from full-mode `dialga-bench` runs.
package dialga

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"dialga/internal/dialga"
	"dialga/internal/engine"
	"dialga/internal/harness"
	"dialga/internal/isal"
	"dialga/internal/mem"
	"dialga/internal/rs"
	"dialga/internal/workload"
)

func benchFigure(b *testing.B, id string, headline func(*harness.Figure) (string, float64)) {
	r := &harness.Runner{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := r.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if name, v := headline(f); name != "" {
			b.ReportMetric(v, name)
		}
	}
}

// lastOf returns the final point of a named series.
func lastOf(f *harness.Figure, series string) float64 {
	for _, s := range f.Series {
		if s.Name == series {
			return s.Y[len(s.Y)-1]
		}
	}
	return 0
}

func BenchmarkFig03LoadSources(b *testing.B) {
	benchFigure(b, "fig03", func(f *harness.Figure) (string, float64) {
		return "PM-pfOn-GB/s", lastOf(f, "throughput")
	})
}

func BenchmarkFig04Frequency(b *testing.B) {
	benchFigure(b, "fig04", func(f *harness.Figure) (string, float64) {
		return "PM-3.3GHz-GB/s", lastOf(f, "PM/AVX512")
	})
}

func BenchmarkFig05StripeWidth(b *testing.B) {
	benchFigure(b, "fig05", func(f *harness.Figure) (string, float64) {
		return "k-max-GB/s", lastOf(f, "throughput")
	})
}

func BenchmarkFig06BlockSize(b *testing.B) {
	benchFigure(b, "fig06", func(f *harness.Figure) (string, float64) {
		return "4KB-pfOn-GB/s", lastOf(f, "tput/pf-on")
	})
}

func BenchmarkFig07Scalability(b *testing.B) {
	benchFigure(b, "fig07", func(f *harness.Figure) (string, float64) {
		return "t18-pfOn-GB/s", lastOf(f, "pf-on")
	})
}

func BenchmarkFig10EncodeVsK(b *testing.B) {
	benchFigure(b, "fig10", func(f *harness.Figure) (string, float64) {
		return "DIALGA-wide-GB/s", lastOf(f, "DIALGA")
	})
}

func BenchmarkFig11ParityCount(b *testing.B) {
	benchFigure(b, "fig11", func(f *harness.Figure) (string, float64) {
		return "DIALGA-GB/s", lastOf(f, "DIALGA")
	})
}

func BenchmarkFig12BlockSweep(b *testing.B) {
	benchFigure(b, "fig12", func(f *harness.Figure) (string, float64) {
		return "DIALGA-GB/s", lastOf(f, "DIALGA")
	})
}

func BenchmarkFig13ThreadSweep(b *testing.B) {
	benchFigure(b, "fig13", func(f *harness.Figure) (string, float64) {
		return "DIALGA-t18-GB/s", lastOf(f, "DIALGA")
	})
}

func BenchmarkFig14Decode(b *testing.B) {
	benchFigure(b, "fig14", func(f *harness.Figure) (string, float64) {
		return "DIALGA-GB/s", lastOf(f, "DIALGA")
	})
}

func BenchmarkFig15SIMD(b *testing.B) {
	benchFigure(b, "fig15", func(f *harness.Figure) (string, float64) {
		return "DIALGA-AVX256-GB/s", lastOf(f, "DIALGA")
	})
}

func BenchmarkFig16LRC(b *testing.B) {
	benchFigure(b, "fig16", func(f *harness.Figure) (string, float64) {
		return "DIALGA-GB/s", lastOf(f, "DIALGA")
	})
}

func BenchmarkFig17MissCycles(b *testing.B) {
	benchFigure(b, "fig17", func(f *harness.Figure) (string, float64) {
		return "DIALGA-cyc/load", lastOf(f, "DIALGA")
	})
}

func BenchmarkFig18Breakdown(b *testing.B) {
	benchFigure(b, "fig18", func(f *harness.Figure) (string, float64) {
		return "full-GB/s", lastOf(f, "+BF")
	})
}

func BenchmarkFig19ReadTraffic(b *testing.B) {
	benchFigure(b, "fig19", func(f *harness.Figure) (string, float64) {
		return "DIALGA-t18-media-amp", lastOf(f, "media")
	})
}

// --- byte-level codec benchmarks (real encoding work) ---

func benchCodecEncode(b *testing.B, k, m, size int) {
	c, err := NewCodec(k, m)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		r.Read(data[i])
	}
	parity := make([][]byte, m)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	b.SetBytes(int64(k * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRS_12_8(b *testing.B)  { benchCodecEncode(b, 8, 4, 1024) }
func BenchmarkCodecRS_28_24(b *testing.B) { benchCodecEncode(b, 24, 4, 1024) }
func BenchmarkCodecRS_52_48(b *testing.B) { benchCodecEncode(b, 48, 4, 1024) }

// --- encode kernel sweep: fused tiled path vs scalar reference ---

// BenchmarkEncode sweeps code shape and block size over the fused
// word-parallel encoder and the retained scalar reference so the kernel
// speedup is measured rather than assumed; MB/s counts data bytes
// consumed (k*blocksize per op). CI runs the sweep at -benchtime=1x and
// archives the output as BENCH_encode.json.
func BenchmarkEncode(b *testing.B) {
	impls := []struct {
		name string
		enc  func(*rs.Code, [][]byte, [][]byte) error
	}{
		{"fused", (*rs.Code).Encode},
		{"ref", (*rs.Code).EncodeRef},
	}
	for _, sh := range []struct{ k, m int }{{4, 2}, {10, 4}, {24, 4}} {
		for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
			c, err := rs.New(sh.k, sh.m)
			if err != nil {
				b.Fatal(err)
			}
			r := rand.New(rand.NewSource(9))
			data := make([][]byte, sh.k)
			for i := range data {
				data[i] = make([]byte, size)
				r.Read(data[i])
			}
			parity := make([][]byte, sh.m)
			for i := range parity {
				parity[i] = make([]byte, size)
			}
			for _, im := range impls {
				b.Run(fmt.Sprintf("rs=%d+%d/bs=%dKiB/%s", sh.k, sh.m, size>>10, im.name), func(b *testing.B) {
					b.SetBytes(int64(sh.k * size))
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := im.enc(c, data, parity); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// --- streaming pipeline benchmarks (internal/stream) ---

// streamBenchPayload is the per-iteration input for the streaming
// benchmarks; MB/s throughput is reported via b.SetBytes.
const streamBenchPayload = 16 << 20

// BenchmarkStreamEncode sweeps worker count and stripe size over the
// concurrent pipeline. Compare against
// BenchmarkStreamEncodeScalarBaseline (the single-threaded
// whole-buffer EncodeAppend path) to measure the pipeline's speedup
// rather than assume it.
func BenchmarkStreamEncode(b *testing.B) {
	codec, err := NewCodec(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, streamBenchPayload)
	rand.New(rand.NewSource(1)).Read(payload)

	workerSweep := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		workerSweep = append(workerSweep, p)
	}
	for _, stripe := range []int{64 << 10, 1 << 20} {
		for _, workers := range workerSweep {
			b.Run(fmt.Sprintf("stripe=%dKiB/workers=%d", stripe>>10, workers), func(b *testing.B) {
				opts := StreamOptions{Codec: codec, StripeSize: stripe, Workers: workers}
				enc, err := NewStreamEncoder(opts)
				if err != nil {
					b.Fatal(err)
				}
				writers := make([]io.Writer, enc.Shards())
				for i := range writers {
					writers[i] = io.Discard
				}
				b.SetBytes(streamBenchPayload)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStreamEncodeScalarBaseline is the pre-pipeline path: one
// goroutine, whole-buffer Split + EncodeAppend per stripe, fresh
// parity allocations — what cmd/dialga-encode did before the
// streaming rewrite, restated per-stripe for a like-for-like byte
// count.
func BenchmarkStreamEncodeScalarBaseline(b *testing.B) {
	codec, err := NewCodec(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, streamBenchPayload)
	rand.New(rand.NewSource(1)).Read(payload)
	const stripe = 1 << 20
	b.SetBytes(streamBenchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(payload); off += stripe {
			end := off + stripe
			if end > len(payload) {
				end = len(payload)
			}
			data, err := Split(payload[off:end], 8)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := codec.EncodeAppend(data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamDecode measures degraded-mode streaming decode with
// two erased shards, forcing reconstruction of every stripe.
func BenchmarkStreamDecode(b *testing.B) {
	codec, err := NewCodec(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	opts := StreamOptions{Codec: codec, StripeSize: 1 << 20}
	payload := make([]byte, streamBenchPayload)
	rand.New(rand.NewSource(2)).Read(payload)
	bufs := make([]bytes.Buffer, 12)
	writers := make([]io.Writer, 12)
	for i := range bufs {
		writers[i] = &bufs[i]
	}
	if _, err := StreamEncode(context.Background(), opts, bytes.NewReader(payload), writers); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(streamBenchPayload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readers := make([]io.Reader, 12)
		for j := range bufs {
			readers[j] = bytes.NewReader(bufs[j].Bytes())
		}
		readers[0], readers[5] = nil, nil
		if _, err := StreamDecode(context.Background(), opts, readers, io.Discard, int64(len(payload))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md §5) ---

func ablationRun(b *testing.B, threads int, mutate func(*mem.Config), opts dialga.Options) float64 {
	b.Helper()
	cfg := mem.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := engine.New(cfg, mem.PM)
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < threads; t++ {
		l, err := workload.New(workload.Config{
			K: 24, M: 4, BlockSize: 1024,
			TotalDataBytes: 4 << 20, Placement: workload.Scattered, Seed: 42,
		}, t)
		if err != nil {
			b.Fatal(err)
		}
		e.AddThread(dialga.New(l, e.Config(), opts))
	}
	res, err := e.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res.ThroughputGBps
}

// BenchmarkAblationDistanceSearch compares hill climbing against the
// pinned initial distance d=k.
func BenchmarkAblationDistanceSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationRun(b, 1, nil, dialga.DefaultOptions())
		pinned := dialga.DefaultOptions()
		pinned.DisableHillClimbing = true
		without := ablationRun(b, 1, nil, pinned)
		b.ReportMetric(with, "climbed-GB/s")
		b.ReportMetric(without, "pinned-GB/s")
	}
}

// BenchmarkAblationStreamCapacity compares the Cascade Lake (32) and
// Ice Lake (64) stream-table capacities on a wide stripe: with 64
// slots, k=48 no longer collapses the hardware prefetcher.
func BenchmarkAblationStreamCapacity(b *testing.B) {
	run := func(slots int) float64 {
		cfg := mem.DefaultConfig()
		cfg.StreamTableSize = slots
		e, err := engine.New(cfg, mem.PM)
		if err != nil {
			b.Fatal(err)
		}
		l, err := workload.New(workload.Config{
			K: 48, M: 4, BlockSize: 1024,
			TotalDataBytes: 4 << 20, Placement: workload.Scattered, Seed: 42,
		}, 0)
		if err != nil {
			b.Fatal(err)
		}
		e.AddThread(isal.NewProgram(l, e.Config(), isal.KernelParams{}))
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.ThroughputGBps
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(32), "CLX32-GB/s")
		b.ReportMetric(run(64), "ICX64-GB/s")
	}
}

// BenchmarkAblationThreadThreshold compares the paper's fixed threshold
// (12) against never disabling the hardware prefetcher, at 16 threads.
func BenchmarkAblationThreadThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationRun(b, 16, nil, dialga.DefaultOptions())
		noMgmt := dialga.DefaultOptions()
		noMgmt.DisableHWManagement = true
		without := ablationRun(b, 16, nil, noMgmt)
		b.ReportMetric(with, "threshold12-GB/s")
		b.ReportMetric(without, "noMgmt-GB/s")
	}
}

// BenchmarkAblationShuffleCost quantifies the shuffle mapping's side
// effect and its repair: de-training the prefetcher by cacheline
// shuffling stretches each XPLine's reuse window (hurting the PM read
// buffer), and the XPLine loop expansion restores the locality. Run at
// 16 threads where the read buffer is the binding resource.
func BenchmarkAblationShuffleCost(b *testing.B) {
	run := func(params isal.KernelParams, hwp bool) float64 {
		cfg := mem.DefaultConfig()
		cfg.HWPrefetchEnabled = hwp
		e, err := engine.New(cfg, mem.PM)
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < 16; t++ {
			l, err := workload.New(workload.Config{
				K: 24, M: 4, BlockSize: 1024,
				TotalDataBytes: 4 << 20, Placement: workload.Scattered, Seed: 42,
			}, t)
			if err != nil {
				b.Fatal(err)
			}
			e.AddThread(isal.NewProgram(l, e.Config(), params))
		}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.ThroughputGBps
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(isal.KernelParams{}, false), "machineOff-GB/s")
		b.ReportMetric(run(isal.KernelParams{Shuffle: true}, true), "shuffle-GB/s")
		b.ReportMetric(run(isal.KernelParams{Shuffle: true, XPLineLoop: true}, true), "shuffle+xp-GB/s")
	}
}

// BenchmarkGenerality runs the §6 experiment: DIALGA on the Optane
// profile vs a CMM-H-style flash-backed profile.
func BenchmarkGenerality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &harness.Runner{Quick: true}
		f, err := r.Gen01()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastOf(f, "DIALGA"), "CMMH-t8-GB/s")
	}
}

// BenchmarkAblationPrefetchOverhead quantifies the branchless operator:
// the same pipelined prefetching with a naive branching interface
// (extra cycles per prefetch, §4.2.2).
func BenchmarkAblationPrefetchOverhead(b *testing.B) {
	run := func(extra float64) float64 {
		cfg := mem.DefaultConfig()
		e, err := engine.New(cfg, mem.PM)
		if err != nil {
			b.Fatal(err)
		}
		l, err := workload.New(workload.Config{
			K: 24, M: 4, BlockSize: 1024,
			TotalDataBytes: 4 << 20, Placement: workload.Scattered, Seed: 42,
		}, 0)
		if err != nil {
			b.Fatal(err)
		}
		e.AddThread(isal.NewProgram(l, e.Config(), isal.KernelParams{
			SWPrefetch: true, PrefetchDistance: 96, PrefetchOverheadCycles: extra,
		}))
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.ThroughputGBps
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(0), "branchless-GB/s")
		b.ReportMetric(run(6), "branching-GB/s")
	}
}
